package core

import (
	"reflect"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

// TestEventsSinceTrackerSemantics pins the cursor contract at the
// tracker level: cursor 0 returns the full log, a cursor at or past
// the end returns empty (not an error) with the current end cursor,
// and trimmed prefixes resume at the oldest retained event.
func TestEventsSinceTrackerSemantics(t *testing.T) {
	tr := newEvolutionTracker(0)
	if evs, next := tr.eventsSince(0); len(evs) != 0 || next != 0 {
		t.Fatalf("fresh tracker: eventsSince(0) = %v, %d; want empty, 0", evs, next)
	}
	if evs, next := tr.eventsSince(99); len(evs) != 0 || next != 0 {
		t.Fatalf("fresh tracker: eventsSince(99) = %v, %d; want empty, 0", evs, next)
	}

	tr.observe(1, obs(cellSet(1, 2)))             // emerge
	tr.observe(2, obs(cellSet(1, 2), cellSet(5))) // emerge
	tr.observe(3, obs(cellSet(1, 2)))             // disappear
	total := uint64(len(tr.log()))
	if total < 3 {
		t.Fatalf("expected at least 3 events, got %v", tr.log())
	}

	// Cursor 0 returns the full log.
	evs, next := tr.eventsSince(0)
	if !reflect.DeepEqual(evs, tr.log()) {
		t.Errorf("eventsSince(0) = %v, want full log %v", evs, tr.log())
	}
	if next != total {
		t.Errorf("eventsSince(0) next cursor = %d, want %d", next, total)
	}

	// A mid-log cursor returns exactly the suffix.
	evs, next = tr.eventsSince(1)
	if !reflect.DeepEqual(evs, tr.log()[1:]) {
		t.Errorf("eventsSince(1) = %v, want %v", evs, tr.log()[1:])
	}
	if next != total {
		t.Errorf("eventsSince(1) next cursor = %d, want %d", next, total)
	}

	// Cursor at the end: empty, same cursor. Past the end: same.
	for _, cur := range []uint64{total, total + 1, total + 1000} {
		evs, next = tr.eventsSince(cur)
		if len(evs) != 0 || next != total {
			t.Errorf("eventsSince(%d) = %v, %d; want empty, %d", cur, evs, next, total)
		}
	}

	// An observation that detects nothing leaves the cursor unchanged.
	tr.observe(4, obs(cellSet(1, 2)))
	if _, next = tr.eventsSince(total); next != total {
		t.Errorf("no-event observe moved the cursor: %d -> %d", total, next)
	}

	// The returned slice is a copy: mutating it must not corrupt the log.
	evs, _ = tr.eventsSince(0)
	if len(evs) > 0 {
		evs[0].Kind = "corrupted"
		if tr.log()[0].Kind == "corrupted" {
			t.Error("eventsSince returned a view aliasing the live log")
		}
	}
}

// TestEventsSinceTrimmedPrefix pins the maxEvents interaction: cursors
// stay stable across trimming, a cursor into the trimmed prefix
// resumes at the oldest retained event, and the end cursor counts
// every event ever recorded (not just the retained tail).
func TestEventsSinceTrimmedPrefix(t *testing.T) {
	tr := newEvolutionTracker(3)
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			tr.observe(float64(i), obs(cellSet(int64(i*10+1))))
		} else {
			tr.observe(float64(i), obs(cellSet(int64(i*10+5))))
		}
	}
	retained := tr.log()
	if len(retained) != 3 {
		t.Fatalf("expected the cap to retain 3 events, got %d", len(retained))
	}
	_, end := tr.eventsSince(0)
	if end != tr.total() || end <= 3 {
		t.Fatalf("end cursor = %d, want total ever recorded %d (> cap)", end, tr.total())
	}
	// Cursor 0 (deep in the trimmed prefix) resumes at the oldest
	// retained event.
	evs, next := tr.eventsSince(0)
	if !reflect.DeepEqual(evs, retained) {
		t.Errorf("eventsSince(0) = %v, want retained tail %v", evs, retained)
	}
	if next != end {
		t.Errorf("eventsSince(0) next = %d, want %d", next, end)
	}
	// A cursor inside the retained tail returns the exact suffix.
	evs, _ = tr.eventsSince(end - 1)
	if !reflect.DeepEqual(evs, retained[2:]) {
		t.Errorf("eventsSince(end-1) = %v, want %v", evs, retained[2:])
	}
}

// TestEventsSinceEngine drives the real engine and checks that
// EventsSince agrees with Events, resumes incrementally across
// ingestion, and keeps its cursor stable across an intervening refresh
// that records no new activity.
func TestEventsSinceEngine(t *testing.T) {
	pts := blobStream([][]float64{{0, 0}, {10, 10}}, 0.5, 4000, 1000, 1)
	e, err := New(Config{Radius: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	half := len(pts) / 2
	if err := e.InsertBatch(pts[:half]); err != nil {
		t.Fatal(err)
	}
	evs, cursor := e.EventsSince(0)
	if !reflect.DeepEqual(evs, e.Events()) {
		t.Errorf("EventsSince(0) disagrees with Events: %v vs %v", evs, e.Events())
	}
	if cursor != uint64(len(evs)) {
		t.Errorf("cursor = %d, want %d", cursor, len(evs))
	}

	// Resuming from the cursor after more ingestion yields exactly the
	// new suffix.
	if err := e.InsertBatch(pts[half:]); err != nil {
		t.Fatal(err)
	}
	more, next := e.EventsSince(cursor)
	all := e.Events()
	if len(more) != len(all)-int(cursor) || (len(more) > 0 && !reflect.DeepEqual(more, all[cursor:])) {
		t.Errorf("resumed EventsSince(%d) = %v, want %v", cursor, more, all[cursor:])
	}
	if next != uint64(len(all)) {
		t.Errorf("next cursor = %d, want %d", next, len(all))
	}

	// A refresh that detects no activity must not move the cursor: the
	// stream is quiescent (no new points), so back-to-back refreshes
	// observe an identical partition.
	e.Refresh()
	_, stable := e.EventsSince(next)
	e.Refresh()
	_, stable2 := e.EventsSince(next)
	if stable != next || stable2 != next {
		t.Errorf("quiescent refreshes moved the cursor: %d -> %d -> %d", next, stable, stable2)
	}

	// The stats counter agrees with the cursor (total ever recorded).
	if got := e.Stats().EvolutionEvents; got != int64(next) {
		t.Errorf("Stats().EvolutionEvents = %d, want %d", got, next)
	}
}

// TestInsertBatchAssignedAcks checks the per-point cell acks: same
// clustering as InsertBatch, one ack per point, every ack naming the
// cell that absorbed the point at absorption time.
func TestInsertBatchAssignedAcks(t *testing.T) {
	pts := blobStream([][]float64{{0, 0}, {10, 10}}, 0.5, 3000, 1000, 7)

	ref, err := New(Config{Radius: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	acked, err := New(Config{Radius: 1.5})
	if err != nil {
		t.Fatal(err)
	}

	var acks []int64
	for i := 0; i < len(pts); i += 256 {
		end := min(i+256, len(pts))
		if err := ref.InsertBatch(pts[i:end]); err != nil {
			t.Fatal(err)
		}
		got, err := acked.InsertBatchAssigned(pts[i:end], acks[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != end-i {
			t.Fatalf("batch %d: %d acks for %d points", i, len(got), end-i)
		}
		for j, id := range got {
			if id < 0 {
				t.Fatalf("batch %d point %d: negative cell ack %d", i, j, id)
			}
		}
		acks = got
	}

	// Identical clustering output.
	a, b := ref.Snapshot(), acked.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Error("InsertBatchAssigned diverged from InsertBatch")
	}
	if !reflect.DeepEqual(ref.Events(), acked.Events()) {
		t.Error("InsertBatchAssigned event log diverged from InsertBatch")
	}

	// An invalid point rejects the whole batch with no state change and
	// an empty ack slice.
	before := acked.Stats().Points
	bad := []stream.Point{pts[0], {}}
	got, err := acked.InsertBatchAssigned(bad, nil)
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if len(got) != 0 {
		t.Errorf("failed batch returned acks: %v", got)
	}
	if acked.Stats().Points != before {
		t.Error("failed batch changed engine state")
	}
}
