package core

import (
	"slices"
	"testing"
)

// cellSet builds one partition member list: observe takes sorted
// cell-ID slices.
func cellSet(ids ...int64) []int64 {
	out := append([]int64(nil), ids...)
	slices.Sort(out)
	return out
}

// obs wraps member lists as a full-diff partition (every cluster
// marked changed), the way the from-scratch rebuild calls observe.
func obs(sets ...[]int64) []obsCluster {
	out := make([]obsCluster, len(sets))
	for i, s := range sets {
		out[i] = obsCluster{ids: s, changed: true}
	}
	return out
}

func eventsOfKind(events []Event, kind EventKind) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

func TestEvolutionEmergeAndContinuity(t *testing.T) {
	tr := newEvolutionTracker(0)
	ids := tr.observe(1, obs(cellSet(1, 2, 3)))
	if len(ids) != 1 {
		t.Fatalf("expected one cluster ID, got %v", ids)
	}
	first := ids[0]
	if got := eventsOfKind(tr.log(), Emerge); len(got) != 1 {
		t.Fatalf("expected one emerge event, got %v", tr.log())
	}
	// The same cluster (same cells, slightly changed) keeps its ID and
	// produces no new emerge event.
	ids = tr.observe(2, obs(cellSet(1, 2, 3, 4)))
	if ids[0] != first {
		t.Errorf("cluster lost its identity: %d -> %d", first, ids[0])
	}
	if got := eventsOfKind(tr.log(), Emerge); len(got) != 1 {
		t.Errorf("continuing cluster should not emerge again: %v", tr.log())
	}
	// Membership changed, so an adjust event is recorded.
	if got := eventsOfKind(tr.log(), Adjust); len(got) != 1 {
		t.Errorf("expected one adjust event, got %v", tr.log())
	}
}

func TestEvolutionSecondClusterEmerges(t *testing.T) {
	tr := newEvolutionTracker(0)
	tr.observe(1, obs(cellSet(1, 2)))
	ids := tr.observe(2, obs(cellSet(1, 2), cellSet(10, 11)))
	if ids[0] == ids[1] {
		t.Fatalf("distinct clusters must get distinct IDs: %v", ids)
	}
	if got := eventsOfKind(tr.log(), Emerge); len(got) != 2 {
		t.Errorf("expected two emerge events in total, got %v", tr.log())
	}
}

func TestEvolutionDisappear(t *testing.T) {
	tr := newEvolutionTracker(0)
	ids := tr.observe(1, obs(cellSet(1, 2), cellSet(10, 11)))
	tr.observe(2, obs(cellSet(1, 2)))
	dis := eventsOfKind(tr.log(), Disappear)
	if len(dis) != 1 {
		t.Fatalf("expected one disappear event, got %v", tr.log())
	}
	if len(dis[0].Sources) != 1 || (dis[0].Sources[0] != ids[0] && dis[0].Sources[0] != ids[1]) {
		t.Errorf("disappear event references wrong cluster: %v", dis[0])
	}
}

func TestEvolutionSplit(t *testing.T) {
	tr := newEvolutionTracker(0)
	ids := tr.observe(1, obs(cellSet(1, 2, 3, 4, 5, 6)))
	orig := ids[0]
	ids = tr.observe(2, obs(cellSet(1, 2, 3), cellSet(4, 5, 6)))
	splits := eventsOfKind(tr.log(), Split)
	if len(splits) != 1 {
		t.Fatalf("expected one split event, got %v", tr.log())
	}
	if splits[0].Sources[0] != orig {
		t.Errorf("split source = %v, want %d", splits[0].Sources, orig)
	}
	if len(splits[0].Targets) != 2 {
		t.Errorf("split targets = %v, want two clusters", splits[0].Targets)
	}
	// One of the products keeps the original identity (the best
	// continuation), the other gets a fresh ID.
	if !(ids[0] == orig || ids[1] == orig) {
		t.Errorf("no split product inherited the original ID: %v", ids)
	}
	if ids[0] == ids[1] {
		t.Errorf("split products share an ID: %v", ids)
	}
}

func TestEvolutionMerge(t *testing.T) {
	tr := newEvolutionTracker(0)
	ids := tr.observe(1, obs(cellSet(1, 2, 3), cellSet(10, 11)))
	a, b := ids[0], ids[1]
	merged := tr.observe(2, obs(cellSet(1, 2, 3, 10, 11)))
	merges := eventsOfKind(tr.log(), Merge)
	if len(merges) != 1 {
		t.Fatalf("expected one merge event, got %v", tr.log())
	}
	m := merges[0]
	if len(m.Sources) != 2 {
		t.Fatalf("merge sources = %v, want both original clusters", m.Sources)
	}
	found := map[int]bool{}
	for _, s := range m.Sources {
		found[s] = true
	}
	if !found[a] || !found[b] {
		t.Errorf("merge sources %v do not include both %d and %d", m.Sources, a, b)
	}
	if len(m.Targets) != 1 || m.Targets[0] != merged[0] {
		t.Errorf("merge target %v, want %v", m.Targets, merged)
	}
	// The merged cluster keeps the identity of the larger constituent.
	if merged[0] != a {
		t.Errorf("merged cluster ID = %d, want the ID of the larger source %d", merged[0], a)
	}
}

func TestEvolutionSplitThreeWays(t *testing.T) {
	tr := newEvolutionTracker(0)
	tr.observe(1, obs(cellSet(1, 2, 3, 4, 5, 6, 7, 8, 9)))
	tr.observe(2, obs(cellSet(1, 2, 3), cellSet(4, 5, 6), cellSet(7, 8, 9)))
	splits := eventsOfKind(tr.log(), Split)
	if len(splits) != 1 {
		t.Fatalf("expected one split event, got %v", tr.log())
	}
	if len(splits[0].Targets) != 3 {
		t.Errorf("three-way split targets = %v", splits[0].Targets)
	}
}

func TestEvolutionNoChangeNoEvents(t *testing.T) {
	tr := newEvolutionTracker(0)
	tr.observe(1, obs(cellSet(1, 2), cellSet(5, 6)))
	before := len(tr.log())
	tr.observe(2, obs(cellSet(1, 2), cellSet(5, 6)))
	if len(tr.log()) != before {
		t.Errorf("identical partitions should produce no events, got %v", tr.log()[before:])
	}
}

func TestEvolutionEmptyPartitions(t *testing.T) {
	tr := newEvolutionTracker(0)
	if ids := tr.observe(1, nil); len(ids) != 0 {
		t.Errorf("empty partition should yield no IDs, got %v", ids)
	}
	tr.observe(2, obs(cellSet(1)))
	tr.observe(3, nil)
	if got := eventsOfKind(tr.log(), Disappear); len(got) != 1 {
		t.Errorf("cluster vanishing into an empty partition should disappear: %v", tr.log())
	}
}

func TestEvolutionMaxEventsCap(t *testing.T) {
	tr := newEvolutionTracker(3)
	for i := 0; i < 10; i++ {
		// Alternate between two disjoint partitions to force events.
		if i%2 == 0 {
			tr.observe(float64(i), obs(cellSet(int64(i*10+1))))
		} else {
			tr.observe(float64(i), obs(cellSet(int64(i*10+5))))
		}
	}
	if len(tr.log()) > 3 {
		t.Errorf("event log exceeded cap: %d events", len(tr.log()))
	}
}

func TestEventString(t *testing.T) {
	events := []Event{
		{Kind: Emerge, Time: 1, Targets: []int{1}},
		{Kind: Disappear, Time: 2, Sources: []int{1}},
		{Kind: Split, Time: 3, Sources: []int{1}, Targets: []int{1, 2}},
		{Kind: Merge, Time: 4, Sources: []int{1, 2}, Targets: []int{1}},
		{Kind: Adjust, Time: 5, Sources: []int{1}, Targets: []int{1}},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Errorf("empty String() for %v", e.Kind)
		}
	}
}
