package core

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// EventKind is one of the five cluster evolution activities of Table 1.
type EventKind string

// Cluster evolution activities.
const (
	// Emerge: a new cluster is born (∅ → C).
	Emerge EventKind = "emerge"
	// Disappear: an existing cluster dies (C → ∅).
	Disappear EventKind = "disappear"
	// Split: one cluster splits into two or more clusters.
	Split EventKind = "split"
	// Merge: two or more clusters merge into one.
	Merge EventKind = "merge"
	// Adjust: cells move between clusters, from outliers into a
	// cluster, or from a cluster to the outliers, without changing the
	// number of clusters.
	Adjust EventKind = "adjust"
)

// Event records one cluster evolution activity.
type Event struct {
	// Kind is the evolution type.
	Kind EventKind
	// Time is the stream time at which the activity was detected.
	Time float64
	// Sources are the cluster IDs the activity consumed (the split
	// cluster, the merged clusters, the disappeared cluster).
	Sources []int
	// Targets are the cluster IDs the activity produced (the split
	// products, the merge result, the emerged cluster). Adjust events
	// list the affected cluster in both Sources and Targets.
	Targets []int
}

// String renders the event in the compact form used by the example
// programs and cmd/edmbench.
func (e Event) String() string {
	switch e.Kind {
	case Emerge:
		return fmt.Sprintf("t=%.2fs emerge cluster %v", e.Time, e.Targets)
	case Disappear:
		return fmt.Sprintf("t=%.2fs disappear cluster %v", e.Time, e.Sources)
	case Split:
		return fmt.Sprintf("t=%.2fs split cluster %v -> %v", e.Time, e.Sources, e.Targets)
	case Merge:
		return fmt.Sprintf("t=%.2fs merge clusters %v -> %v", e.Time, e.Sources, e.Targets)
	default:
		return fmt.Sprintf("t=%.2fs adjust cluster %v", e.Time, e.Targets)
	}
}

// evolutionTracker derives cluster evolution events by diffing
// consecutive cluster-membership snapshots (each snapshot maps a
// cluster ID to the set of cluster-cell IDs it contains), which is how
// the DP-Tree's structural updates surface to the caller (Sec. 3.3).
// It also owns the assignment of stable cluster IDs: a cluster keeps
// its ID across snapshots as long as it is the best continuation of a
// previous cluster.
type evolutionTracker struct {
	nextClusterID int
	// prev maps cluster ID -> member cell IDs of the previous snapshot.
	prev map[int]map[int64]bool
	// events is the append-only evolution log.
	events    []Event
	maxEvents int
}

func newEvolutionTracker(maxEvents int) *evolutionTracker {
	return &evolutionTracker{nextClusterID: 1, prev: map[int]map[int64]bool{}, maxEvents: maxEvents}
}

// observe ingests the current partition (a list of cell-ID sets, one
// per MSDSubTree, in any order) at the given time. It returns the
// cluster IDs assigned to each input set, in the same order, and
// appends any detected evolution events to the log.
func (t *evolutionTracker) observe(now float64, partition []map[int64]bool) []int {
	ids := make([]int, len(partition))

	// Overlap between every current cluster and every previous cluster,
	// via an inverted cell → previous-cluster index: cost is one pass
	// over the previous cells plus one over the current cells, instead
	// of the current × previous quadratic set intersection.
	prevOwner := make(map[int64]int)
	for prevID, prevSet := range t.prev {
		for cell := range prevSet {
			prevOwner[cell] = prevID
		}
	}
	type match struct {
		cur, prevID, overlap int
	}
	var matches []match
	counts := make(map[int]int)
	for i, cur := range partition {
		clear(counts)
		for cell := range cur {
			if prevID, ok := prevOwner[cell]; ok {
				counts[prevID]++
			}
		}
		for prevID, ov := range counts {
			matches = append(matches, match{cur: i, prevID: prevID, overlap: ov})
		}
	}
	// Greedy best-overlap matching: the largest overlaps claim identity
	// continuation first. Ties break deterministically.
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].overlap != matches[b].overlap {
			return matches[a].overlap > matches[b].overlap
		}
		if matches[a].prevID != matches[b].prevID {
			return matches[a].prevID < matches[b].prevID
		}
		return matches[a].cur < matches[b].cur
	})
	curClaimed := make(map[int]bool)  // current index -> has an ID
	prevClaimed := make(map[int]bool) // previous ID -> continued
	// curOverlaps[i] lists the previous clusters overlapping current i;
	// prevOverlaps[p] lists the current clusters overlapping previous p.
	curOverlaps := make(map[int][]int)
	prevOverlaps := make(map[int][]int)
	for _, m := range matches {
		curOverlaps[m.cur] = append(curOverlaps[m.cur], m.prevID)
		prevOverlaps[m.prevID] = append(prevOverlaps[m.prevID], m.cur)
	}
	for _, m := range matches {
		if curClaimed[m.cur] || prevClaimed[m.prevID] {
			continue
		}
		ids[m.cur] = m.prevID
		curClaimed[m.cur] = true
		prevClaimed[m.prevID] = true
	}

	var events []Event

	// Unclaimed current clusters are either split products (they
	// overlap a previous cluster that continued elsewhere) or emerged
	// clusters (no overlap with the past).
	splitProducts := map[int][]int{} // previous ID -> new cluster IDs split from it
	for i := range partition {
		if curClaimed[i] {
			continue
		}
		id := t.nextClusterID
		t.nextClusterID++
		ids[i] = id
		if prevs := curOverlaps[i]; len(prevs) > 0 {
			src := prevs[0]
			splitProducts[src] = append(splitProducts[src], id)
		} else {
			events = append(events, Event{Kind: Emerge, Time: now, Targets: []int{id}})
		}
	}
	for src, products := range splitProducts {
		// The continuation of src (if any) is also a product of the split.
		targets := append([]int(nil), products...)
		if prevClaimed[src] {
			targets = append([]int{src}, targets...)
		}
		sort.Ints(targets)
		events = append(events, Event{Kind: Split, Time: now, Sources: []int{src}, Targets: targets})
	}

	// Unclaimed previous clusters either merged into a current cluster
	// (they overlap one) or disappeared.
	mergedInto := map[int][]int{} // current cluster ID -> previous IDs absorbed
	for prevID := range t.prev {
		if prevClaimed[prevID] {
			continue
		}
		if curs := prevOverlaps[prevID]; len(curs) > 0 {
			target := ids[curs[0]]
			mergedInto[target] = append(mergedInto[target], prevID)
		} else {
			events = append(events, Event{Kind: Disappear, Time: now, Sources: []int{prevID}})
		}
	}
	for target, absorbed := range mergedInto {
		sources := append(absorbed, target)
		sort.Ints(sources)
		events = append(events, Event{Kind: Merge, Time: now, Sources: sources, Targets: []int{target}})
	}

	// Continuing clusters whose membership changed (and which were not
	// already reported as split sources or merge targets) are adjust
	// events.
	reported := map[int]bool{}
	for _, e := range events {
		for _, id := range e.Sources {
			reported[id] = true
		}
		for _, id := range e.Targets {
			reported[id] = true
		}
	}
	for i, cur := range partition {
		id := ids[i]
		if !curClaimed[i] || reported[id] {
			continue
		}
		prevSet := t.prev[id]
		if !sameCellSet(cur, prevSet) {
			events = append(events, Event{Kind: Adjust, Time: now, Sources: []int{id}, Targets: []int{id}})
		}
	}

	// Deterministic event order within the snapshot diff: by kind, then
	// numerically by source and target IDs (no formatting on this path
	// — it runs at every clustering refresh).
	slices.SortFunc(events, func(a, b Event) int {
		if c := strings.Compare(string(a.Kind), string(b.Kind)); c != 0 {
			return c
		}
		if c := slices.Compare(a.Sources, b.Sources); c != 0 {
			return c
		}
		return slices.Compare(a.Targets, b.Targets)
	})
	t.events = append(t.events, events...)
	if t.maxEvents > 0 && len(t.events) > t.maxEvents {
		t.events = t.events[len(t.events)-t.maxEvents:]
	}

	// Store the new snapshot for the next diff.
	next := make(map[int]map[int64]bool, len(partition))
	for i, cur := range partition {
		next[ids[i]] = cur
	}
	t.prev = next
	return ids
}

func sameCellSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// log returns the recorded events.
func (t *evolutionTracker) log() []Event { return t.events }
