package core

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync/atomic"
)

// EventKind is one of the five cluster evolution activities of Table 1.
type EventKind string

// Cluster evolution activities.
const (
	// Emerge: a new cluster is born (∅ → C).
	Emerge EventKind = "emerge"
	// Disappear: an existing cluster dies (C → ∅).
	Disappear EventKind = "disappear"
	// Split: one cluster splits into two or more clusters.
	Split EventKind = "split"
	// Merge: two or more clusters merge into one.
	Merge EventKind = "merge"
	// Adjust: cells move between clusters, from outliers into a
	// cluster, or from a cluster to the outliers, without changing the
	// number of clusters.
	Adjust EventKind = "adjust"
)

// Event records one cluster evolution activity.
type Event struct {
	// Kind is the evolution type.
	Kind EventKind
	// Time is the stream time at which the activity was detected.
	Time float64
	// Sources are the cluster IDs the activity consumed (the split
	// cluster, the merged clusters, the disappeared cluster).
	Sources []int
	// Targets are the cluster IDs the activity produced (the split
	// products, the merge result, the emerged cluster). Adjust events
	// list the affected cluster in both Sources and Targets.
	Targets []int
}

// String renders the event in the compact form used by the example
// programs and cmd/edmbench.
func (e Event) String() string {
	switch e.Kind {
	case Emerge:
		return fmt.Sprintf("t=%.2fs emerge cluster %v", e.Time, e.Targets)
	case Disappear:
		return fmt.Sprintf("t=%.2fs disappear cluster %v", e.Time, e.Sources)
	case Split:
		return fmt.Sprintf("t=%.2fs split cluster %v -> %v", e.Time, e.Sources, e.Targets)
	case Merge:
		return fmt.Sprintf("t=%.2fs merge clusters %v -> %v", e.Time, e.Sources, e.Targets)
	default:
		return fmt.Sprintf("t=%.2fs adjust cluster %v", e.Time, e.Targets)
	}
}

// evolutionTracker derives cluster evolution events by diffing
// consecutive cluster-membership snapshots (each snapshot is a list of
// sorted member-cell-ID slices, one per MSDSubTree), which is how the
// DP-Tree's structural updates surface to the caller (Sec. 3.3). It
// also owns the assignment of stable cluster IDs: a cluster keeps its
// ID across snapshots as long as it is the best continuation of a
// previous cluster.
//
// The tracker is written by the owning goroutine only (observe runs at
// clustering refreshes); concurrent readers get the log through the
// atomically published view header, which is safe because the events
// slice is append-only and readers never look past their loaded
// length.
type evolutionTracker struct {
	nextClusterID int
	// prev maps cluster ID -> sorted member cell IDs of the previous
	// snapshot.
	prev map[int][]int64
	// events is the append-only evolution log (the retained tail when
	// maxEvents trims).
	events    []Event
	maxEvents int
	// base is the cursor (sequence number) of events[0]: the count of
	// events trimmed off the front of the log so far. Cursors are
	// stable across trimming — event k keeps sequence number k for the
	// life of the tracker, whether or not it is still retained.
	base uint64
	// view is the atomically published log header for concurrent
	// readers (Events, EventsSince).
	view atomic.Pointer[eventLog]

	// Scratch reused across observe calls so steady-state refreshes do
	// not allocate for the diff bookkeeping.
	prevOwner   map[int64]int
	counts      map[int]int
	matches     []trackerMatch
	inPlay      []int
	firstPrev   []int
	firstCur    map[int]int
	curClaimed  map[int]bool
	prevClaimed map[int]bool
}

type trackerMatch struct {
	cur, prevID, overlap int
}

// eventLog is the atomically published view of the evolution log: the
// retained tail of events plus the sequence number of its first entry.
// It is immutable once published — the events slice is append-only and
// readers never look past the published length, and a trim publishes a
// fresh header rather than mutating the old one.
type eventLog struct {
	events []Event
	base   uint64
}

func newEvolutionTracker(maxEvents int) *evolutionTracker {
	return &evolutionTracker{
		nextClusterID: 1,
		prev:          map[int][]int64{},
		maxEvents:     maxEvents,
		prevOwner:     map[int64]int{},
		counts:        map[int]int{},
		firstCur:      map[int]int{},
		curClaimed:    map[int]bool{},
		prevClaimed:   map[int]bool{},
	}
}

// obsCluster is one cluster of the partition handed to observe: its
// sorted member cell IDs, plus the incremental-extraction hints. When
// changed is false the caller guarantees the member set is exactly the
// set observed last time under cluster ID prevID; the tracker then
// settles the cluster's identity without touching its members. An
// unchanged cluster is isolated in the overlap graph — its cells
// appear in no other current cluster and its previous cells in no
// other previous cluster — so excluding it from the greedy matching
// cannot change any other cluster's outcome, and the diff cost scales
// with the churn, not the partition size.
type obsCluster struct {
	ids     []int64
	prevID  int
	changed bool
}

// observe ingests the current partition (one obsCluster per
// MSDSubTree, in a deterministic order) at the given time. It returns
// the cluster IDs assigned to each input cluster, in the same order,
// and appends any detected evolution events to the log. The input id
// slices are retained until the member set changes; callers must
// treat them as immutable once passed (the engine's copy-on-change
// views satisfy this).
func (t *evolutionTracker) observe(now float64, partition []obsCluster) []int {
	ids := make([]int, len(partition))

	clear(t.curClaimed)
	clear(t.prevClaimed)
	curClaimed, prevClaimed := t.curClaimed, t.prevClaimed

	// Settle unchanged clusters first: identity continues, no events.
	for i := range partition {
		oc := &partition[i]
		if oc.changed {
			continue
		}
		if _, ok := t.prev[oc.prevID]; !ok || prevClaimed[oc.prevID] {
			// The caller's hint does not match the tracker's state
			// (first observation, or a stale id); fall back to the full
			// treatment for this cluster.
			oc.changed = true
			continue
		}
		ids[i] = oc.prevID
		curClaimed[i] = true
		prevClaimed[oc.prevID] = true
	}

	// Overlap between every remaining current cluster and every
	// remaining ("in play") previous cluster, via an inverted cell →
	// previous-cluster index: cost is one pass over the in-play
	// previous cells plus one over the changed current cells.
	clear(t.prevOwner)
	inPlay := t.inPlay[:0]
	for prevID, prevSet := range t.prev {
		if prevClaimed[prevID] {
			continue
		}
		inPlay = append(inPlay, prevID)
		for _, cell := range prevSet {
			t.prevOwner[cell] = prevID
		}
	}
	t.inPlay = inPlay[:0]
	matches := t.matches[:0]
	for i := range partition {
		if curClaimed[i] {
			continue
		}
		clear(t.counts)
		for _, cell := range partition[i].ids {
			if prevID, ok := t.prevOwner[cell]; ok {
				t.counts[prevID]++
			}
		}
		for prevID, ov := range t.counts {
			matches = append(matches, trackerMatch{cur: i, prevID: prevID, overlap: ov})
		}
	}
	t.matches = matches[:0]
	// Greedy best-overlap matching: the largest overlaps claim identity
	// continuation first. Ties break deterministically.
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].overlap != matches[b].overlap {
			return matches[a].overlap > matches[b].overlap
		}
		if matches[a].prevID != matches[b].prevID {
			return matches[a].prevID < matches[b].prevID
		}
		return matches[a].cur < matches[b].cur
	})
	// firstPrev[i] is the dominant (best-overlap, in sorted-match
	// order) previous cluster of current i, firstCur[p] the dominant
	// current cluster of previous p; they attribute split products and
	// merge victims to their main counterpart without building full
	// overlap lists.
	firstPrev := t.firstPrev[:0]
	for range partition {
		firstPrev = append(firstPrev, -1)
	}
	t.firstPrev = firstPrev[:0]
	clear(t.firstCur)
	for _, m := range matches {
		if firstPrev[m.cur] == -1 {
			firstPrev[m.cur] = m.prevID
		}
		if _, ok := t.firstCur[m.prevID]; !ok {
			t.firstCur[m.prevID] = m.cur
		}
	}
	for _, m := range matches {
		if curClaimed[m.cur] || prevClaimed[m.prevID] {
			continue
		}
		ids[m.cur] = m.prevID
		curClaimed[m.cur] = true
		prevClaimed[m.prevID] = true
	}

	var events []Event

	// Unclaimed current clusters are either split products (they
	// overlap a previous cluster that continued elsewhere) or emerged
	// clusters (no overlap with the past).
	splitProducts := map[int][]int{} // previous ID -> new cluster IDs split from it
	for i := range partition {
		if curClaimed[i] {
			continue
		}
		id := t.nextClusterID
		t.nextClusterID++
		ids[i] = id
		if src := firstPrev[i]; src != -1 {
			splitProducts[src] = append(splitProducts[src], id)
		} else {
			events = append(events, Event{Kind: Emerge, Time: now, Targets: []int{id}})
		}
	}
	for src, products := range splitProducts {
		// The continuation of src (if any) is also a product of the split.
		targets := append([]int(nil), products...)
		if prevClaimed[src] {
			targets = append([]int{src}, targets...)
		}
		sort.Ints(targets)
		events = append(events, Event{Kind: Split, Time: now, Sources: []int{src}, Targets: targets})
	}

	// Unclaimed previous clusters either merged into a current cluster
	// (they overlap one) or disappeared.
	mergedInto := map[int][]int{} // current cluster ID -> previous IDs absorbed
	for _, prevID := range inPlay {
		if prevClaimed[prevID] {
			continue
		}
		if cur, ok := t.firstCur[prevID]; ok {
			target := ids[cur]
			mergedInto[target] = append(mergedInto[target], prevID)
		} else {
			events = append(events, Event{Kind: Disappear, Time: now, Sources: []int{prevID}})
		}
	}
	for target, absorbed := range mergedInto {
		sources := append(absorbed, target)
		sort.Ints(sources)
		events = append(events, Event{Kind: Merge, Time: now, Sources: sources, Targets: []int{target}})
	}

	// Continuing clusters whose membership changed (and which were not
	// already reported as split sources or merge targets) are adjust
	// events.
	reported := map[int]bool{}
	for _, e := range events {
		for _, id := range e.Sources {
			reported[id] = true
		}
		for _, id := range e.Targets {
			reported[id] = true
		}
	}
	for i := range partition {
		id := ids[i]
		// Unchanged clusters are Equal to their previous set by
		// contract; only changed continuing clusters can adjust.
		if !curClaimed[i] || !partition[i].changed || reported[id] {
			continue
		}
		if !slices.Equal(partition[i].ids, t.prev[id]) {
			events = append(events, Event{Kind: Adjust, Time: now, Sources: []int{id}, Targets: []int{id}})
		}
	}

	// Deterministic event order within the snapshot diff: by kind, then
	// numerically by source and target IDs (no formatting on this path
	// — it runs at every clustering refresh).
	slices.SortFunc(events, func(a, b Event) int {
		if c := strings.Compare(string(a.Kind), string(b.Kind)); c != 0 {
			return c
		}
		if c := slices.Compare(a.Sources, b.Sources); c != 0 {
			return c
		}
		return slices.Compare(a.Targets, b.Targets)
	})
	t.events = append(t.events, events...)
	if t.maxEvents > 0 && len(t.events) > t.maxEvents {
		drop := len(t.events) - t.maxEvents
		t.base += uint64(drop)
		t.events = t.events[drop:]
	}
	t.publish()

	// Store the new snapshot for the next diff. Unchanged clusters'
	// entries are already exact; in-play previous clusters were
	// continued (re-stored below under the same ID), merged or
	// disappeared, so their old entries go.
	for _, prevID := range inPlay {
		delete(t.prev, prevID)
	}
	for i := range partition {
		if partition[i].changed {
			t.prev[ids[i]] = partition[i].ids
		}
	}
	return ids
}

// publish stores the current log header for concurrent readers.
func (t *evolutionTracker) publish() {
	t.view.Store(&eventLog{events: t.events, base: t.base})
}

// log returns the recorded events (owner goroutine only; concurrent
// readers go through logView).
func (t *evolutionTracker) log() []Event { return t.events }

// total returns the number of events ever recorded, including any
// trimmed off the retained tail by the maxEvents cap (owner goroutine
// only).
func (t *evolutionTracker) total() uint64 { return t.base + uint64(len(t.events)) }

// logView returns a copy of the recorded events, safe to call from any
// goroutine concurrently with ingestion.
func (t *evolutionTracker) logView() []Event {
	h := t.view.Load()
	if h == nil {
		return nil
	}
	return append([]Event(nil), h.events...)
}

// eventsSince returns a copy of the recorded events with sequence
// number >= cursor, together with the next cursor (the sequence number
// one past the last event recorded so far). It is safe to call from
// any goroutine concurrently with ingestion.
//
// Cursor semantics: 0 means "from the beginning"; a cursor at or past
// the end returns an empty slice (never an error) with the current end
// cursor; a cursor pointing into the log's trimmed prefix (possible
// only when maxEvents is set) resumes at the oldest retained event.
// The returned cursor is stable: it only advances when new events are
// recorded, so a caller polling with the returned cursor sees every
// retained event exactly once.
func (t *evolutionTracker) eventsSince(cursor uint64) ([]Event, uint64) {
	h := t.view.Load()
	if h == nil {
		return nil, 0
	}
	next := h.base + uint64(len(h.events))
	if cursor >= next {
		return nil, next
	}
	if cursor < h.base {
		cursor = h.base
	}
	return append([]Event(nil), h.events[cursor-h.base:]...), next
}
