package core

import (
	"cmp"
	"slices"
)

// reservoir is the outlier reservoir of Sec. 4.1/4.4: it caches
// inactive cluster-cells (low timely-density cells) so they can either
// absorb new points and re-enter the DP-Tree or, once outdated, be
// deleted to recycle memory.
type reservoir struct {
	cells map[int64]*Cell
	// scratch backs expire's result slice so periodic sweeps do not
	// allocate; it is valid until the next expire call.
	scratch []*Cell
}

func newReservoir() *reservoir {
	return &reservoir{cells: make(map[int64]*Cell)}
}

// size returns the number of inactive cells currently cached.
func (r *reservoir) size() int { return len(r.cells) }

// add parks a cell in the reservoir.
func (r *reservoir) add(c *Cell) {
	c.active = false
	r.cells[c.id] = c
}

// remove takes a cell out of the reservoir (because it is promoted or
// deleted).
func (r *reservoir) remove(c *Cell) {
	delete(r.cells, c.id)
}

// expire removes and returns the outdated cells: inactive cells that
// have not absorbed any point for at least deleteDelay seconds
// (Sec. 4.4, Theorem 3). The result is ordered by cell ID (map
// iteration is not deterministic) and backed by scratch space valid
// until the next call.
func (r *reservoir) expire(now, deleteDelay float64) []*Cell {
	expired := r.scratch[:0]
	for _, c := range r.cells {
		if now-c.lastAbsorb >= deleteDelay {
			expired = append(expired, c)
		}
	}
	slices.SortFunc(expired, func(a, b *Cell) int { return cmp.Compare(a.id, b.id) })
	for _, c := range expired {
		delete(r.cells, c.id)
	}
	r.scratch = expired[:0]
	return expired
}
