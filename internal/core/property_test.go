package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/densitymountain/edmstream/internal/stream"
)

// TestRandomStreamInvariantsQuick feeds randomly generated streams
// (random cluster counts, spreads, noise levels and radii) through
// EDMStream and checks after every run that the DP-Tree invariants
// hold, the snapshot is a partition of the active cells, and the
// bookkeeping counters are consistent. It is the repository's main
// randomized robustness check for the core algorithm.
func TestRandomStreamInvariantsQuick(t *testing.T) {
	prop := func(seedU uint16, clustersU, noiseU, radiusU uint8) bool {
		seed := int64(seedU)
		rng := rand.New(rand.NewSource(seed))
		clusters := 1 + int(clustersU%4)
		noise := float64(noiseU%30) / 100
		radius := 0.3 + float64(radiusU%20)/10

		centers := make([][]float64, clusters)
		for i := range centers {
			centers[i] = []float64{rng.Float64()*20 - 10, rng.Float64()*20 - 10}
		}

		e, err := New(Config{Radius: radius, Tau: 3, InitPoints: 100, EvolutionInterval: 0.2, SweepInterval: 0.1})
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		const n = 1200
		for i := 0; i < n; i++ {
			var vec []float64
			if rng.Float64() < noise {
				vec = []float64{rng.Float64()*40 - 20, rng.Float64()*40 - 20}
			} else {
				c := centers[rng.Intn(clusters)]
				vec = []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5}
			}
			p := stream.Point{ID: int64(i), Vector: vec, Time: float64(i) / 1000, Label: stream.NoLabel}
			if err := e.Insert(p); err != nil {
				t.Logf("insert failed: %v", err)
				return false
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		snap := e.Snapshot()
		seen := map[int64]bool{}
		covered := 0
		for _, c := range snap.Clusters {
			if len(c.CellIDs) == 0 {
				t.Log("empty cluster in snapshot")
				return false
			}
			for _, id := range c.CellIDs {
				if seen[id] {
					t.Log("cell in two clusters")
					return false
				}
				seen[id] = true
				covered++
			}
		}
		if covered != snap.ActiveCells {
			t.Logf("partition covers %d cells, active = %d", covered, snap.ActiveCells)
			return false
		}
		st := e.Stats()
		if st.Points != n {
			t.Logf("points counter %d != %d", st.Points, n)
			return false
		}
		if st.ActiveCells+st.InactiveCells != int(st.CellsCreated-st.Deletions) {
			t.Logf("cell bookkeeping mismatch: %+v", st)
			return false
		}
		// Invariants must also hold after invoking the clustering via
		// the stream.Clusterer interface path.
		if got := e.Clusters(e.Now() + 0.5); len(got) != len(e.LastSnapshot().Clusters) {
			t.Log("Clusters() and LastSnapshot() disagree")
			return false
		}
		return e.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestSnapshotIsolation verifies that snapshots do not alias the
// clusterer's internal state: mutating a returned snapshot must not
// corrupt later clustering.
func TestSnapshotIsolation(t *testing.T) {
	pts := blobStream([][]float64{{0, 0}, {8, 8}}, 0.5, 2000, 1000, 21)
	e, err := New(Config{Radius: 0.8, Tau: 3, InitPoints: 200})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, pts)
	snap := e.Snapshot()
	if snap.NumClusters() == 0 {
		t.Fatal("no clusters")
	}
	// Vandalize the snapshot, including the seed vectors it carries.
	for i := range snap.Clusters {
		snap.Clusters[i].CellIDs = nil
		snap.Clusters[i].ID = -99
		for _, seed := range snap.Clusters[i].SeedPoints {
			for d := range seed.Vector {
				seed.Vector[d] = 1e9
			}
		}
	}
	again := e.Snapshot()
	if again.NumClusters() != 2 {
		t.Fatalf("clusterer state corrupted by snapshot mutation: %d clusters", again.NumClusters())
	}
	for _, c := range again.Clusters {
		if len(c.CellIDs) == 0 || c.ID < 0 {
			t.Fatalf("cluster info corrupted: %+v", c)
		}
		for _, seed := range c.SeedPoints {
			for _, v := range seed.Vector {
				if v > 1e8 {
					t.Fatal("snapshot seed mutation leaked into the clusterer's cells")
				}
			}
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
