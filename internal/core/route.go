package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/densitymountain/edmstream/internal/index"
	"github.com/densitymountain/edmstream/internal/stream"
)

// This file implements the parallel route phase of batched ingestion.
//
// InsertBatch is dominated by routing — finding each point's nearest
// cell seed — while the state update that follows (absorb, band
// update, DP-Tree relink) is cheap but inherently serial. The pipeline
// splits the two: a GOMAXPROCS-sized worker pool speculatively routes
// every point of the batch against an epoch-frozen, read-only view of
// the seed index (index.View), and the existing serial apply loop then
// consumes the pre-routed points, validating each speculation against
// the state it has itself changed since the snapshot was frozen
// (resolveRouted). The output is byte-identical to per-point
// ingestion for every worker count — the equivalence property tests
// assert it — because the validation rule is exact, not heuristic.

// routedPoint is the route phase's speculation for one batch point:
// the nearest cell against the frozen index view, with its distance,
// or ok == false when no seed was within the cell radius at route
// time.
type routedPoint struct {
	id   int64
	dist float64
	ok   bool
}

// routeChunk is the unit of work route workers claim from the shared
// cursor: large enough that cursor contention is negligible, small
// enough that a straggling worker cannot hold the batch hostage.
const routeChunk = 64

// minRouteBatch is the smallest batch the parallel route phase
// accepts; below it the spawn-and-join overhead outweighs the routing
// work and the serial path wins.
const minRouteBatch = 2 * routeChunk

// maxRouteFold bounds how many mid-batch cells resolveRouted folds
// into a speculation per point; past it (a cold or drifting batch
// creating cells in bulk) validating by live re-probe is cheaper, and
// keeps the apply phase no worse than serial routing.
const maxRouteFold = 32

// routeJob is the shared state of one parallel route phase. It lives
// on the engine and is reused across batches, so a steady-state batch
// allocates nothing: workers claim chunks through the atomic cursor
// and write their results into disjoint slots of out.
type routeJob struct {
	view   index.View
	pts    []stream.Point
	out    []routedPoint
	radius float64
	cursor atomic.Int64
	wg     sync.WaitGroup
}

// routePool is the engine's persistent route-phase worker pool: it
// spawns its goroutines once (lazily, at the first batch that routes
// in parallel) and hands them jobs over an unbuffered channel, so a
// steady-state batch costs channel rendezvous instead of goroutine
// spawns — a `go` statement heap-allocates its argument frame, which
// would put the only steady-state allocation of the whole ingest path
// right on the hot loop.
//
// The workers reference only the pool, never the engine, so an
// abandoned engine stays collectible; the runtime cleanup registered
// at pool creation closes quit when the engine becomes unreachable and
// the parked workers exit.
type routePool struct {
	tasks chan *routeJob
	quit  chan struct{}
	// scratch[0] belongs to the owner goroutine; scratch[w] to pool
	// worker w.
	scratch []index.RouteScratch
}

func newRoutePool(workers int) *routePool {
	p := &routePool{
		tasks:   make(chan *routeJob),
		quit:    make(chan struct{}),
		scratch: make([]index.RouteScratch, workers),
	}
	for w := 1; w < workers; w++ {
		go poolWorker(p, w)
	}
	return p
}

// stopRoutePool is the engine's GC cleanup: it releases the pool's
// parked workers. It must not reference the engine (runtime.AddCleanup
// contract), only the pool.
func stopRoutePool(p *routePool) { close(p.quit) }

// poolWorker parks on the task channel and runs each job it receives.
// One received job corresponds to exactly one WaitGroup count: a fast
// worker looping back for a second token of the same job just finds
// the cursor exhausted and signals again.
func poolWorker(p *routePool, wi int) {
	for {
		select {
		case j := <-p.tasks:
			routeRun(j, &p.scratch[wi])
			j.wg.Done()
		case <-p.quit:
			return
		}
	}
}

// routeBatch runs the parallel route phase over pts and returns the
// speculations, or nil when parallel routing does not apply (fewer
// than two workers, a batch too small to pay for the join, or no seeds
// to route against yet) and the caller should ingest serially.
//
// The engine's owner goroutine participates as worker zero, so nw
// workers occupy nw cores with nw−1 pool goroutines. The frozen view
// is read-only and the owner blocks in Wait until every worker is
// done, so the live index is never probed and mutated concurrently.
func (e *EDMStream) routeBatch(pts []stream.Point) []routedPoint {
	if e.workers < 2 || len(pts) < minRouteBatch || e.seedIdx == nil || e.cells.len() == 0 {
		return nil
	}
	if e.pool == nil {
		e.pool = newRoutePool(e.workers)
		runtime.AddCleanup(e, stopRoutePool, e.pool)
	}
	nw := e.workers
	if chunks := (len(pts) + routeChunk - 1) / routeChunk; nw > chunks {
		nw = chunks
	}
	if cap(e.routed) < len(pts) {
		e.routed = make([]routedPoint, len(pts))
	}
	j := &e.job
	j.view = e.seedIdx.View()
	j.pts = pts
	j.out = e.routed[:len(pts)]
	j.radius = e.cfg.Radius
	j.cursor.Store(0)
	j.wg.Add(nw - 1)
	for w := 1; w < nw; w++ {
		e.pool.tasks <- j
	}
	routeRun(j, &e.pool.scratch[0])
	j.wg.Wait()
	out := j.out
	j.view, j.pts, j.out = nil, nil, nil
	e.stats.SpeculativeRoutes += int64(len(pts))
	return out
}

// routeRun claims chunks of the batch from the shared cursor and
// routes each point against the frozen view into its result slot.
func routeRun(j *routeJob, s *index.RouteScratch) {
	n := int64(len(j.pts))
	for {
		lo := j.cursor.Add(routeChunk) - routeChunk
		if lo >= n {
			return
		}
		hi := lo + routeChunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			id, d, ok := j.view.NearestWithin(j.pts[i], j.radius, s)
			j.out[i] = routedPoint{id: id, dist: d, ok: ok}
		}
	}
}

// resolveRouted turns the route phase's speculation for p into the
// authoritative nearest-cell decision, validating it against every
// state change the apply phase has made since the route snapshot was
// frozen.
//
// The validation rule is exact because routing depends only on the set
// of live seeds: seeds are immutable for the lifetime of a cell,
// absorption moves no seed, and activation state and τ play no part in
// which cell absorbs a point. Only two kinds of mid-batch change can
// therefore touch a speculation:
//
//   - A cell created after the snapshot lies within Radius of p. The
//     speculation is exact over the pre-snapshot cells, so folding the
//     new cells in directly — beat the speculated winner only when
//     strictly closer, since created IDs are larger and distance ties
//     break toward the lower ID — yields the exact live answer. This
//     also covers points speculated to be outliers that a new cell
//     claims.
//   - The speculated cell itself was deleted by a mid-batch sweep. The
//     frozen ranking below the deleted winner is unknown, so the point
//     re-routes against the live index (which also covers any new
//     cells). Deletions of other cells only remove competitors and
//     cannot change the winner.
//
// Overridden speculations are counted in Stats.SpeculationMisses; the
// re-route path stamps probe distances exactly as serial ingestion
// does, while validated speculations skip the stamping — which only
// disables the optional triangle-inequality skips (Theorem 2) for
// those points, never changing the clustering output.
func (e *EDMStream) resolveRouted(p stream.Point, r routedPoint) (*Cell, bool) {
	var best *Cell
	var bestD float64
	if r.ok {
		if best = e.cells.get(r.id); best == nil {
			e.stats.SpeculationMisses++
			c, _, ok := e.nearestSeed(p)
			return c, ok
		}
		bestD = r.dist
	}
	if len(e.batchNew) > maxRouteFold {
		// Folding in this many mid-batch cells costs more per point
		// than one live probe, so the validation would make the apply
		// phase slower than serial routing (O(points × new cells) on a
		// cold or drifting batch). Re-route against the live index —
		// which contains the new cells — and count a miss only when
		// the answer actually moved.
		c, _, ok := e.nearestSeed(p)
		if ok != (best != nil) || c != best {
			e.stats.SpeculationMisses++
		}
		return c, ok
	}
	stolen := false
	for _, n := range e.batchNew {
		if e.cells.get(n.id) != n {
			continue // created and already deleted within this batch
		}
		if d := n.seed.Distance(p); d <= e.cfg.Radius && (best == nil || d < bestD) {
			best, bestD, stolen = n, d, true
		}
	}
	if stolen {
		e.stats.SpeculationMisses++
	}
	return best, best != nil
}
