package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

// burstyStream generates a 2-D clustered stream with temporal
// locality: points arrive in bursts of 1–8 consecutive points from the
// same cluster (sessionized traffic), interleaved with uniform noise.
// The bursts make consecutive points land in the same cluster-cell,
// which is the case batch ingestion's run coalescing optimizes — the
// equivalence tests must exercise it, not just the one-point-per-cell
// interleaving of a fully shuffled stream.
func burstyStream(seed int64, n int, clusters int, noise float64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for i := range centers {
		centers[i] = []float64{rng.Float64()*20 - 10, rng.Float64()*20 - 10}
	}
	pts := make([]stream.Point, 0, n)
	for len(pts) < n {
		if rng.Float64() < noise {
			pts = append(pts, stream.Point{
				ID:     int64(len(pts)),
				Vector: []float64{rng.Float64()*40 - 20, rng.Float64()*40 - 20},
				Time:   float64(len(pts)) / 1000,
				Label:  stream.NoLabel,
			})
			continue
		}
		c := centers[rng.Intn(clusters)]
		burst := 1 + rng.Intn(8)
		// Burst points jitter around one spot so they tend to fall in
		// the same cluster-cell.
		bx := c[0] + rng.NormFloat64()*0.5
		by := c[1] + rng.NormFloat64()*0.5
		for b := 0; b < burst && len(pts) < n; b++ {
			pts = append(pts, stream.Point{
				ID:     int64(len(pts)),
				Vector: []float64{bx + rng.NormFloat64()*0.1, by + rng.NormFloat64()*0.1},
				Time:   float64(len(pts)) / 1000,
				Label:  stream.NoLabel,
			})
		}
	}
	return pts
}

// batchRun drives one EDMStream over pts through InsertBatch in
// batches of batchSize, snapshotting at the same point counts equivRun
// does (every snapEvery points, which must be a multiple of batchSize,
// plus a final one).
func batchRun(t *testing.T, cfg Config, pts []stream.Point, batchSize, snapEvery int) (*EDMStream, []Snapshot) {
	t.Helper()
	if snapEvery%batchSize != 0 {
		t.Fatalf("snapEvery %d must be a multiple of batchSize %d", snapEvery, batchSize)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", cfg.IndexPolicy, err)
	}
	var snaps []Snapshot
	for i := 0; i < len(pts); i += batchSize {
		end := i + batchSize
		if end > len(pts) {
			end = len(pts)
		}
		if err := e.InsertBatch(pts[i:end]); err != nil {
			t.Fatalf("InsertBatch(points %d:%d): %v", i, end, err)
		}
		if end%snapEvery == 0 {
			snaps = append(snaps, e.Snapshot())
		}
	}
	snaps = append(snaps, e.Snapshot())
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("batch size %d: %v", batchSize, err)
	}
	return e, snaps
}

// TestBatchSequentialEquivalence is the batching property test: for
// every index policy and a spread of batch sizes, feeding a stream
// through InsertBatch must produce exactly the same cells, snapshots,
// evolution events and lifecycle counters as feeding it point by
// point. Run coalescing, deferred band updates and batch-boundary
// flushes only change how much bookkeeping runs, never its outcome.
func TestBatchSequentialEquivalence(t *testing.T) {
	streams := map[string][]stream.Point{
		"bursty":  burstyStream(7, 3000, 3, 0.15),
		"shuffed": burstyStream(42, 2500, 4, 0.3),
	}
	// Also exercise adaptive τ, whose tuner state depends on every
	// intermediate refresh happening at the same stream times.
	cfgs := map[string]Config{
		"static": {
			Radius: 0.8, Tau: 2.5, InitPoints: 200,
			EvolutionInterval: 0.25, SweepInterval: 0.2,
		},
		"adaptive": {
			Radius: 0.8, AdaptiveTau: true, Tau: 2.5, InitPoints: 200,
			EvolutionInterval: 0.25, SweepInterval: 0.2,
		},
	}
	batchSizes := []int{5, 25, 250, 500}
	const snapEvery = 500

	for sname, pts := range streams {
		for cname, cfg := range cfgs {
			for _, policy := range []IndexPolicy{IndexGrid, IndexLinear} {
				cfg := cfg
				cfg.IndexPolicy = policy
				seqRun, seqSnaps := equivRun(t, cfg, pts, snapEvery)
				for _, bs := range batchSizes {
					t.Run(sname+"/"+cname+"/"+policy.String(), func(t *testing.T) {
						bRun, bSnaps := batchRun(t, cfg, pts, bs, snapEvery)
						compareSnapshots(t, bSnaps, seqSnaps)
						compareCells(t, bRun, seqRun)
						compareEvents(t, bRun.Events(), seqRun.Events())
						bs1, bs2 := bRun.Stats(), seqRun.Stats()
						if bs1.Points != bs2.Points || bs1.CellsCreated != bs2.CellsCreated ||
							bs1.Promotions != bs2.Promotions || bs1.Demotions != bs2.Demotions ||
							bs1.Deletions != bs2.Deletions {
							t.Fatalf("lifecycle counters differ:\n  batch      %+v\n  sequential %+v", bs1, bs2)
						}
						if bRun.Tau() != seqRun.Tau() {
							t.Fatalf("τ differs: batch %v, sequential %v", bRun.Tau(), seqRun.Tau())
						}
					})
				}
			}
		}
	}
}

// TestParallelRoutingEquivalence is the parallel-routing property
// test: for every index policy, worker count and a spread of batch
// sizes, InsertBatch with a parallel route phase must produce exactly
// the same cells, snapshots, evolution events, lifecycle counters and
// τ as per-point ingestion. Speculative routing against the frozen
// index view plus apply-phase validation only changes where the
// routing work runs, never its outcome.
func TestParallelRoutingEquivalence(t *testing.T) {
	streams := map[string][]stream.Point{
		"bursty":  burstyStream(7, 3000, 3, 0.15),
		"shuffed": burstyStream(42, 2500, 4, 0.3),
	}
	cfgs := map[string]Config{
		"static": {
			Radius: 0.8, Tau: 2.5, InitPoints: 200,
			EvolutionInterval: 0.25, SweepInterval: 0.2,
		},
		"adaptive": {
			Radius: 0.8, AdaptiveTau: true, Tau: 2.5, InitPoints: 200,
			EvolutionInterval: 0.25, SweepInterval: 0.2,
		},
	}
	workerCounts := []int{1, 2, 4, 8}
	batchSizes := []int{250, 500}
	const snapEvery = 500

	for sname, pts := range streams {
		for cname, cfg := range cfgs {
			for _, policy := range []IndexPolicy{IndexGrid, IndexLinear} {
				cfg := cfg
				cfg.IndexPolicy = policy
				seqRun, seqSnaps := equivRun(t, cfg, pts, snapEvery)
				for _, workers := range workerCounts {
					for _, bs := range batchSizes {
						name := fmt.Sprintf("%s/%s/%s/w%d/b%d", sname, cname, policy, workers, bs)
						t.Run(name, func(t *testing.T) {
							wcfg := cfg
							wcfg.IngestWorkers = workers
							bRun, bSnaps := batchRun(t, wcfg, pts, bs, snapEvery)
							compareSnapshots(t, bSnaps, seqSnaps)
							compareCells(t, bRun, seqRun)
							compareEvents(t, bRun.Events(), seqRun.Events())
							bs1, bs2 := bRun.Stats(), seqRun.Stats()
							if bs1.Points != bs2.Points || bs1.CellsCreated != bs2.CellsCreated ||
								bs1.Promotions != bs2.Promotions || bs1.Demotions != bs2.Demotions ||
								bs1.Deletions != bs2.Deletions {
								t.Fatalf("lifecycle counters differ:\n  parallel   %+v\n  sequential %+v", bs1, bs2)
							}
							if bRun.Tau() != seqRun.Tau() {
								t.Fatalf("τ differs: parallel %v, sequential %v", bRun.Tau(), seqRun.Tau())
							}
							switch {
							case workers == 1 && bs1.SpeculativeRoutes != 0:
								t.Fatalf("single-worker run reported %d speculative routes, want 0", bs1.SpeculativeRoutes)
							case workers > 1 && bs >= minRouteBatch && bs1.SpeculativeRoutes == 0:
								t.Fatal("parallel run never exercised the route phase")
							}
						})
					}
				}
			}
		}
	}
}

// TestParallelRoutingInvalidation pins the speculation-validation rule
// on a stream built to invalidate speculations both ways mid-batch:
//
//   - cell A at the origin is created before the batch, then deleted by
//     a mid-batch sweep (its idle time crosses DeleteDelay while the
//     batch's earlier points advance the clock), so the batch's later
//     origin points — speculatively routed to A against the frozen
//     view — must detect the deletion and re-route live;
//   - the batch's points at a fresh location are speculated outliers,
//     and all but the first must be claimed by the cell the first one
//     creates mid-batch.
//
// The clustering must stay byte-identical to per-point ingestion, and
// the misses must actually have happened (otherwise this test isn't
// testing the validation paths).
func TestParallelRoutingInvalidation(t *testing.T) {
	cfg := Config{
		Radius: 1.0, Tau: 3.0, InitPoints: 10,
		SweepInterval: 0.2, DeleteDelay: 0.5, EvolutionInterval: 0.25,
	}
	rng := rand.New(rand.NewSource(99))
	jit := func() float64 { return rng.NormFloat64() * 0.05 }

	var pre, batch []stream.Point
	emit := func(dst *[]stream.Point, x, y, tm float64) {
		*dst = append(*dst, stream.Point{
			ID: int64(len(pre) + len(batch)), Vector: []float64{x, y}, Time: tm, Label: stream.NoLabel,
		})
	}
	// Pre-batch: initialize on a far-away cluster, then seed cell A at
	// the origin.
	for i := 0; i < 12; i++ {
		emit(&pre, 100+jit(), 100+jit(), float64(i)*0.001)
	}
	emit(&pre, 0, 0, 0.012)
	// Batch: 120 far-away points advance the clock past A's expiry (the
	// sweeps run mid-batch), 20 points at a fresh location get claimed
	// by a mid-batch cell, and 20 origin points arrive after A's
	// deletion.
	for i := 0; i < 120; i++ {
		emit(&batch, 100+jit(), 100+jit(), 0.02+float64(i)*0.008)
	}
	for i := 0; i < 20; i++ {
		emit(&batch, 50+jit(), 50+jit(), 0.985+float64(i)*0.0001)
	}
	for i := 0; i < 20; i++ {
		emit(&batch, jit(), jit(), 0.99+float64(i)*0.0001)
	}

	run := func(workers int) *EDMStream {
		c := cfg
		c.IngestWorkers = workers
		e, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pre {
			if err := e.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		if workers == 1 {
			// Reference: strict per-point ingestion.
			for _, p := range batch {
				if err := e.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
		} else if err := e.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return e
	}

	seq := run(1)
	par := run(4)
	compareSnapshots(t, []Snapshot{par.Snapshot()}, []Snapshot{seq.Snapshot()})
	compareCells(t, par, seq)
	compareEvents(t, par.Events(), seq.Events())

	st := par.Stats()
	if st.SpeculativeRoutes != int64(len(batch)) {
		t.Fatalf("SpeculativeRoutes = %d, want %d (whole batch routed in parallel)", st.SpeculativeRoutes, len(batch))
	}
	if st.Deletions == 0 {
		t.Fatal("no mid-batch deletion happened; the scenario no longer exercises the deleted-cell path")
	}
	// 19 fresh-location points claimed by a mid-batch cell, 20 origin
	// points speculated to the deleted A: at least that many overrides.
	if st.SpeculationMisses < 39 {
		t.Fatalf("SpeculationMisses = %d, want >= 39 (both invalidation kinds must fire)", st.SpeculationMisses)
	}
	if st.SpeculationMisses == st.SpeculativeRoutes {
		t.Fatal("every speculation missed; the valid-speculation path was never exercised")
	}
}

// TestBatchWholeStream feeds the entire stream as one batch and
// compares the final state against point-by-point ingestion — serially
// and with a parallel route phase. The stream needs one warm-up point
// before the big batch so the route phase has seeds to freeze; the
// batch then creates hundreds of cells mid-apply, which also drives
// speculation validation past maxRouteFold into its live-re-probe
// fallback.
func TestBatchWholeStream(t *testing.T) {
	pts := burstyStream(11, 2000, 3, 0.2)
	cfg := Config{Radius: 0.7, Tau: 2, InitPoints: 150, EvolutionInterval: 0.25, SweepInterval: 0.2}

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if err := seq.Insert(pts[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		wcfg := cfg
		wcfg.IngestWorkers = workers
		whole, err := New(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := whole.Insert(pts[0]); err != nil {
			t.Fatal(err)
		}
		if err := whole.InsertBatch(pts[1:]); err != nil {
			t.Fatal(err)
		}
		compareSnapshots(t, []Snapshot{whole.Snapshot()}, []Snapshot{seq.Snapshot()})
		compareCells(t, whole, seq)
		compareEvents(t, whole.Events(), seq.Events())
		if err := whole.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if st := whole.Stats(); workers > 1 {
			if st.SpeculativeRoutes != int64(len(pts)-1) {
				t.Fatalf("workers=%d: SpeculativeRoutes = %d, want %d", workers, st.SpeculativeRoutes, len(pts)-1)
			}
			if st.CellsCreated <= maxRouteFold+1 {
				t.Fatalf("whole-stream batch created only %d cells; maxRouteFold fallback not exercised", st.CellsCreated)
			}
		}
	}
}

// TestDetailedStatsEquivalence pins the DetailedStats contract: the
// knob only toggles wall-clock instrumentation, so runs with it on and
// off must produce identical clustering output, and the timing
// counters must be zero exactly when it is off.
func TestDetailedStatsEquivalence(t *testing.T) {
	pts := burstyStream(5, 2000, 3, 0.2)
	base := Config{Radius: 0.8, Tau: 2.5, InitPoints: 200, EvolutionInterval: 0.25, SweepInterval: 0.2}

	onCfg, offCfg := base, base
	onCfg.DetailedStats = true
	onRun, onSnaps := equivRun(t, onCfg, pts, 500)
	offRun, offSnaps := equivRun(t, offCfg, pts, 500)

	compareSnapshots(t, onSnaps, offSnaps)
	compareCells(t, onRun, offRun)
	compareEvents(t, onRun.Events(), offRun.Events())

	on, off := onRun.Stats(), offRun.Stats()
	if off.AssignTime != 0 || off.DependencyUpdateTime != 0 {
		t.Errorf("timing counters nonzero with DetailedStats off: %+v", off)
	}
	if on.AssignTime <= 0 {
		t.Errorf("AssignTime not collected with DetailedStats on: %+v", on)
	}
	if on.DependencyUpdateTime <= 0 {
		t.Errorf("DependencyUpdateTime not collected with DetailedStats on: %+v", on)
	}
}

// TestInsertBatchValidation checks the all-or-nothing batch contract:
// one invalid point rejects the whole batch without touching state.
func TestInsertBatchValidation(t *testing.T) {
	e, err := New(Config{Radius: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	good := stream.Point{ID: 1, Vector: []float64{0, 0}, Time: 0.001, Label: stream.NoLabel}
	bad := stream.Point{ID: 2, Time: 0.002, Label: stream.NoLabel} // no vector, no tokens
	if err := e.InsertBatch([]stream.Point{good, bad}); err == nil {
		t.Fatal("batch with an invalid point was accepted")
	}
	if got := e.Stats().Points; got != 0 {
		t.Fatalf("rejected batch still consumed %d points", got)
	}
	if e.Now() != 0 {
		t.Fatalf("rejected batch advanced the clock to %v", e.Now())
	}
	if err := e.InsertBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := e.InsertBatch([]stream.Point{good}); err != nil {
		t.Fatalf("valid batch after rejection: %v", err)
	}
	if got := e.Stats().Points; got != 1 {
		t.Fatalf("Points = %d after one valid batch point, want 1", got)
	}
}
