package core

import "testing"

func TestReservoirAddRemoveExpire(t *testing.T) {
	r := newReservoir()
	if r.size() != 0 {
		t.Fatalf("new reservoir size = %d", r.size())
	}
	c1 := newCell(1, numericPoint(0, 0, 0))
	c2 := newCell(2, numericPoint(1, 0, 5))
	c3 := newCell(3, numericPoint(2, 2.0, 9))
	c1.lastAbsorb = 0
	c2.lastAbsorb = 1.5
	c3.lastAbsorb = 2.0
	r.add(c1)
	r.add(c2)
	r.add(c3)
	if r.size() != 3 {
		t.Fatalf("size = %d, want 3", r.size())
	}
	if c1.Active() || c2.Active() {
		t.Error("cells in the reservoir must be inactive")
	}

	// At time 2.1 with ΔTdel = 1.0, only c1 (idle since 0) is outdated.
	expired := r.expire(2.1, 1.0)
	if len(expired) != 1 || expired[0] != c1 {
		t.Fatalf("expire returned %v, want only the stale cell", expired)
	}
	if r.size() != 2 {
		t.Errorf("size after expire = %d, want 2", r.size())
	}

	r.remove(c2)
	if r.size() != 1 {
		t.Errorf("size after remove = %d, want 1", r.size())
	}
	// Removing a cell that is not present is a no-op.
	r.remove(c2)
	if r.size() != 1 {
		t.Errorf("double remove changed size to %d", r.size())
	}

	// Expiring far in the future clears everything.
	if got := r.expire(100, 1.0); len(got) != 1 {
		t.Errorf("final expire returned %d cells, want 1", len(got))
	}
	if r.size() != 0 {
		t.Errorf("reservoir not empty after expiry: %d", r.size())
	}
}
