package core

import (
	"math"

	"github.com/densitymountain/edmstream/internal/stream"
)

// Cell is a cluster-cell (Def. 4): a summary of the points that fell
// within radius r of its seed, carrying a lazily decayed density and
// its dependency (nearest cluster-cell with higher density).
type Cell struct {
	// id is the cell's unique identifier.
	id int64
	// seed is the seed point s_c of the cell. Its timestamp is the
	// cell's creation time.
	seed stream.Point
	// rho is the decayed density as of time rhoTime (Eq. 6/8).
	rho float64
	// rhoTime is the time rho refers to.
	rhoTime float64
	// lastAbsorb is the time the cell last absorbed a point.
	lastAbsorb float64
	// count is the total number of points ever absorbed (undecayed).
	count int64
	// active reports whether the cell currently resides in the DP-Tree
	// (true) or in the outlier reservoir (false).
	active bool

	// dep is the cell this cell depends on: its nearest cell with
	// higher density (Eq. 7). Nil for the absolute density peak and for
	// inactive cells.
	dep *Cell
	// delta is the dependent distance δ to dep; +Inf when dep is nil.
	delta float64
	// children are the cells that depend on this cell, unordered;
	// childIdx is this cell's slot in its dependency's children slice
	// (O(1) unlink without a map — dependency relinks are hot, and the
	// incremental extraction walks children constantly).
	children []*Cell
	childIdx int

	// treeIdx is the cell's position in the DP-Tree's active-cell list
	// (used for O(1) removal). Meaningful only while active.
	treeIdx int
	// densBucket and densIdx locate the cell in the DP-Tree's density
	// band index (the logNorm bucket it lives in and its slot there).
	// Meaningful only while active.
	densBucket int64
	densIdx    int
	// logNorm is the cell's decay-normalized log-density,
	// ln(rho) + λ·ln(1/a)·rhoTime, maintained by EDMStream whenever
	// the cell absorbs a point. Because every cell decays at the same
	// rate, densities at a common time compare exactly as their
	// logNorm keys do, which lets the density filter (Theorem 1) test
	// candidates without exponentiating per candidate.
	logNorm float64
	// lastDist is the distance from the most recently assigned point to
	// this cell's seed, valid when lastDistStamp equals the stream's
	// point counter; it feeds the triangle-inequality filter without a
	// per-point map.
	lastDist      float64
	lastDistStamp int64

	// Incremental cluster-extraction bookkeeping (see extract.go).
	// cluster is the MSD subtree the cell currently belongs to (nil
	// while inactive or before its first extraction) and memberIdx its
	// slot in that cluster's member list. leads is non-nil iff the cell
	// is currently the peak of a cluster. dirtyMark records that the
	// cell's dependency link changed since the last extraction, and
	// extractEpoch stamps the extraction pass that last recomputed the
	// cell's peak.
	cluster      *msdCluster
	memberIdx    int
	leads        *msdCluster
	dirtyMark    bool
	extractEpoch uint64

	// seedView is a lazily built deep clone of the seed shared by
	// published snapshot views (snapshots are read-only, and seeds never
	// change, so one clone serves every snapshot the cell appears in).
	seedView stream.Point
}

// newCell creates a cell seeded by p with initial density 1 (a single
// fresh point).
func newCell(id int64, p stream.Point) *Cell {
	return &Cell{
		id:         id,
		seed:       p.Clone(),
		rho:        1,
		rhoTime:    p.Time,
		lastAbsorb: p.Time,
		count:      1,
		delta:      math.Inf(1),
	}
}

// ID returns the cell's identifier.
func (c *Cell) ID() int64 { return c.id }

// seedClone returns the cell's cached seed clone, building it on first
// use. The clone is shared by every snapshot view the cell appears in;
// views are read-only by contract, and Snapshot() deep-copies before
// handing out mutable data, so the sharing is never observable.
func (c *Cell) seedClone() stream.Point {
	if c.seedView.Vector == nil && c.seedView.Tokens == nil {
		c.seedView = c.seed.Clone()
	}
	return c.seedView
}

// Seed returns the cell's seed point.
func (c *Cell) Seed() stream.Point { return c.seed }

// Count returns the total number of points the cell has absorbed.
func (c *Cell) Count() int64 { return c.count }

// Active reports whether the cell is part of the DP-Tree.
func (c *Cell) Active() bool { return c.active }

// Delta returns the cell's dependent distance (+Inf for the root).
func (c *Cell) Delta() float64 { return c.delta }

// Dependency returns the cell this cell depends on, or nil.
func (c *Cell) Dependency() *Cell { return c.dep }

// Density returns the cell's timely density at time now under the given
// decay model, without mutating the cell.
func (c *Cell) Density(now float64, d stream.Decay) float64 {
	return d.Scale(c.rho, now, c.rhoTime)
}

// absorb folds one point arriving at time now into the cell's density
// following Eq. (8): ρ ← a^{λ(now−rhoTime)}·ρ + 1.
func (c *Cell) absorb(now float64, d stream.Decay) {
	c.rho = d.Scale(c.rho, now, c.rhoTime) + 1
	c.rhoTime = now
	c.lastAbsorb = now
	c.count++
}

// distanceToPoint returns the distance from the cell's seed to p.
func (c *Cell) distanceToPoint(p stream.Point) float64 { return c.seed.Distance(p) }

// distanceToCell returns the distance between the two cells' seeds.
func (c *Cell) distanceToCell(o *Cell) float64 { return c.seed.Distance(o.seed) }

// distanceBelow reports whether the seed distance between c and o is
// strictly below bound, returning the distance when it is. For numeric
// seeds the comparison runs in the squared domain, so the square root
// — a large share of a candidate examination on the dependency-update
// hot path — is only taken for the candidates that actually link.
func (c *Cell) distanceBelow(o *Cell, bound float64) (float64, bool) {
	cv, ov := c.seed.Vector, o.seed.Vector
	if cv == nil || ov == nil {
		d := c.seed.Distance(o.seed)
		if d < bound {
			return d, true
		}
		return 0, false
	}
	var sum float64
	for i := range cv {
		d := cv[i] - ov[i]
		sum += d * d
	}
	if sum < bound*bound {
		return math.Sqrt(sum), true
	}
	return 0, false
}

// higherRanked reports whether cell a outranks cell b in density at
// time now: strictly higher density, with cell ID as a deterministic
// tie-break (lower ID outranks). The tie-break keeps the DP-Tree a
// forest with a single root even when densities collide exactly.
func higherRanked(a, b *Cell, now float64, d stream.Decay) bool {
	ra, rb := a.Density(now, d), b.Density(now, d)
	if ra != rb {
		return ra > rb
	}
	return a.id < b.id
}
