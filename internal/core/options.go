// Package core implements EDMStream, the paper's density-mountain
// stream clustering algorithm (Sec. 4–5): cluster-cells summarize
// nearby points, the DP-Tree maintains the nearest-higher-density
// dependency between cells, an outlier reservoir parks low-density
// cells, the density and triangle-inequality filters (Theorems 1 and 2)
// keep dependency maintenance cheap, and the adaptive τ tuner (Sec. 5)
// adjusts the cluster-separation threshold as the stream evolves. The
// evolution tracker maps DP-Tree changes to the five cluster evolution
// activities of Table 1.
package core

import (
	"fmt"

	"github.com/densitymountain/edmstream/internal/stream"
)

// FilterMode selects which dependency-update filters are enabled. The
// paper's Fig. 11 compares no filtering (wf), the density filter alone
// (df) and both filters (df+tif).
type FilterMode uint8

// Filter flags.
const (
	// FilterNone disables both filters ("wf" in Fig. 11).
	FilterNone FilterMode = 0
	// FilterDensity enables the density filter of Theorem 1 ("df").
	FilterDensity FilterMode = 1 << iota
	// FilterTriangle enables the triangle-inequality filter of
	// Theorem 2 ("tif"). It builds on distances measured during point
	// assignment, so its additional cost is almost free.
	FilterTriangle
	// FilterAll enables both filters ("df+tif"), the default.
	FilterAll = FilterDensity | FilterTriangle
)

// String returns the paper's shorthand for the filter mode.
func (m FilterMode) String() string {
	switch m {
	case FilterNone:
		return "wf"
	case FilterDensity:
		return "df"
	case FilterTriangle:
		return "tif"
	case FilterAll:
		return "df+tif"
	default:
		return fmt.Sprintf("FilterMode(%d)", uint8(m))
	}
}

// IndexPolicy selects the nearest-seed index backing the per-point hot
// path (see internal/index).
type IndexPolicy uint8

// Index policies.
const (
	// IndexAuto (the default) picks per stream: a uniform grid hash
	// over seed coordinates for low-dimensional Euclidean streams, the
	// linear scan otherwise (token-set streams, which a coordinate grid
	// cannot bucket, and high-dimensional streams, where probing the
	// 3^d neighboring buckets stops paying off).
	IndexAuto IndexPolicy = iota
	// IndexGrid forces the grid index for numeric streams regardless
	// of dimensionality. Token-set streams still fall back to the
	// linear scan.
	IndexGrid
	// IndexLinear forces the linear scan. Mainly useful for
	// benchmarking the grid against it.
	IndexLinear
)

// String returns a short identifier for the policy.
func (p IndexPolicy) String() string {
	switch p {
	case IndexAuto:
		return "auto"
	case IndexGrid:
		return "grid"
	case IndexLinear:
		return "linear"
	default:
		return fmt.Sprintf("IndexPolicy(%d)", uint8(p))
	}
}

// DecisionPoint is one cell's (ρ, δ) pair on the decision graph
// (Fig. 2b / Fig. 15). The initial τ is chosen from the decision graph,
// either by a user or by the default largest-gap heuristic.
type DecisionPoint struct {
	// CellID identifies the cluster-cell.
	CellID int64
	// Rho is the cell's timely density.
	Rho float64
	// Delta is the cell's dependent distance (math.Inf(1) for the
	// absolute density peak).
	Delta float64
}

// TauSelector chooses the initial cluster-separation threshold τ⁰ from
// a decision graph. It stands in for the user-interaction step of
// Sec. 5; DefaultTauSelector implements the largest-gap heuristic.
type TauSelector func(graph []DecisionPoint) float64

// Config configures an EDMStream instance.
type Config struct {
	// Radius is the cluster-cell radius r (Def. 4). Required.
	Radius float64
	// Decay is the freshness decay model (default: a=0.998, λ=1).
	Decay stream.Decay
	// Beta controls the active-cell density threshold: a cell is active
	// when its timely density reaches the fraction β of the stream's
	// steady-state total weight (Sec. 4.3). The default is 0.005. The
	// paper's β = 0.0021 is calibrated against its slow per-second
	// decay (total weight ≈ v/(1−a^λ) ≈ 500,000 at 1 k pt/s, threshold
	// ≈ 1050 points of freshness); with the per-point-equivalent decay
	// this package defaults to, the steady-state weight is ≈ 500, and
	// β = 0.005 reproduces the same *relative* role of the threshold
	// (a few points of fresh weight, well above a single stray point,
	// well below an established cluster-cell).
	Beta float64
	// Rate is the expected point arrival rate v in points per second,
	// used by the active threshold and the reservoir bound. Default
	// 1000 (the paper's fixed rate).
	Rate float64
	// Tau is the static cluster-separation threshold. Used directly
	// when AdaptiveTau is false; used as the fallback initial τ⁰ when
	// AdaptiveTau is true and no TauSelector is given. Zero means
	// "choose from the decision graph at initialization".
	Tau float64
	// AdaptiveTau enables the dynamic τ adjustment of Sec. 5.
	AdaptiveTau bool
	// TauSelector picks τ⁰ from the initial decision graph. Nil means
	// DefaultTauSelector.
	TauSelector TauSelector
	// Alpha is the balance parameter of the objective F(τ) (Eq. 15).
	// Zero means "fit α from the initial τ⁰" as described in Sec. 5.
	Alpha float64
	// InitPoints is the number of points buffered before the DP-Tree
	// is initialized and τ⁰/α are chosen. Default 500.
	InitPoints int
	// Filters selects the dependency-update filters. Default FilterAll.
	Filters FilterMode
	// filtersSet records whether Filters was set explicitly; use
	// SetFilters to choose FilterNone (otherwise the zero value would
	// be indistinguishable from "use the default").
	filtersSet bool
	// EvolutionInterval is the stream-time interval (seconds) between
	// evolution checks. Zero means "use the default" (1.0); a negative
	// value disables automatic tracking (evolution is still checked
	// whenever Snapshot is called).
	EvolutionInterval float64
	// SweepInterval is the stream-time interval (seconds) between
	// maintenance sweeps (cell deactivation and reservoir expiry).
	// Default 1.0.
	SweepInterval float64
	// DeleteDelay is ΔTdel, the time an inactive cell may go without
	// absorbing a point before it is deleted (Sec. 4.4). Zero means
	// "use Theorem 3's bound for the configured β, v and decay".
	DeleteDelay float64
	// MaxEvents caps the evolution log length (oldest events are
	// dropped). Zero means unlimited.
	MaxEvents int
	// IndexPolicy selects the nearest-seed index for the per-point hot
	// path. The default (IndexAuto) uses the grid index for
	// low-dimensional Euclidean streams and the linear scan otherwise;
	// both produce identical clustering output.
	IndexPolicy IndexPolicy
	// IngestWorkers is the number of workers InsertBatch's parallel
	// route phase may use to find each batch point's nearest seed
	// against an epoch-frozen index view before the serial apply phase
	// validates and consumes the results. Zero (the default) resolves
	// to GOMAXPROCS at construction time; one disables the parallel
	// phase entirely; negative values are rejected by Validate. Every
	// worker count produces byte-identical clustering output.
	IngestWorkers int
	// DetailedStats enables the wall-clock instrumentation behind
	// Stats.AssignTime and Stats.DependencyUpdateTime (the Fig. 11
	// quantities). It is off by default because the two time.Now()
	// calls per point are measurable fixed overhead on the ingest hot
	// path; the clustering output is identical either way.
	DetailedStats bool
}

// SetFilters sets the filter mode explicitly, allowing FilterNone to be
// selected (the zero Config otherwise defaults to FilterAll).
func (c *Config) SetFilters(m FilterMode) {
	c.Filters = m
	c.filtersSet = true
}

// withDefaults returns a copy of the config with defaults filled in.
func (c Config) withDefaults() Config {
	if c.Beta == 0 {
		c.Beta = 0.005
	}
	if c.Rate == 0 {
		c.Rate = 1000
	}
	if c.Decay == (stream.Decay{}) {
		// The paper sets a^λ = 0.998 per arriving point; with this
		// package's clock in seconds and an expected arrival rate of v
		// points per second, the equivalent per-second decay is
		// a = 0.998, λ = v. This is what makes cluster-cells activate
		// within a second of stream time and stale points fade within a
		// few seconds, matching the paper's SDS snapshots (Fig. 6).
		c.Decay = stream.Decay{A: 0.998, Lambda: c.Rate}
	}
	if c.InitPoints == 0 {
		c.InitPoints = 500
	}
	if !c.filtersSet && c.Filters == FilterNone {
		c.Filters = FilterAll
	}
	if c.EvolutionInterval == 0 {
		c.EvolutionInterval = 1.0
	} else if c.EvolutionInterval < 0 {
		// Negative disables automatic evolution checks; the ingest loop
		// treats a non-positive interval as "off".
		c.EvolutionInterval = 0
	}
	if c.TauSelector == nil {
		c.TauSelector = DefaultTauSelector
	}
	if c.DeleteDelay == 0 {
		c.DeleteDelay = c.Decay.DeleteDelay(c.Beta, c.Rate)
	}
	if c.SweepInterval == 0 {
		// Sweep at least twice per ΔTdel so outdated reservoir cells are
		// removed promptly enough for the Sec. 4.4 size bound to hold.
		c.SweepInterval = 1.0
		if half := c.DeleteDelay / 2; half > 0 && half < c.SweepInterval {
			c.SweepInterval = half
		}
	}
	return c
}

// Validate checks the configuration for errors.
func (c Config) Validate() error {
	d := c.withDefaults()
	if d.Radius <= 0 {
		return fmt.Errorf("core: cluster-cell radius r must be positive, got %v", c.Radius)
	}
	if err := d.Decay.Validate(); err != nil {
		return err
	}
	if d.Rate <= 0 {
		return fmt.Errorf("core: arrival rate v must be positive, got %v", c.Rate)
	}
	lo, hi := d.Decay.BetaRange(d.Rate)
	if d.Beta <= lo || d.Beta >= hi {
		return fmt.Errorf("core: β = %v outside legal range (%v, %v) for rate %v", d.Beta, lo, hi, d.Rate)
	}
	if d.Tau < 0 {
		return fmt.Errorf("core: τ must be non-negative, got %v", c.Tau)
	}
	if d.Alpha < 0 || d.Alpha >= 1 {
		return fmt.Errorf("core: α must be in [0,1), got %v", c.Alpha)
	}
	if d.InitPoints < 0 {
		return fmt.Errorf("core: InitPoints must be non-negative, got %d", c.InitPoints)
	}
	if d.EvolutionInterval < 0 || d.SweepInterval < 0 {
		return fmt.Errorf("core: intervals must be non-negative")
	}
	if d.DeleteDelay < 0 {
		return fmt.Errorf("core: DeleteDelay must be non-negative, got %v", c.DeleteDelay)
	}
	if d.IndexPolicy > IndexLinear {
		return fmt.Errorf("core: unknown index policy %v", c.IndexPolicy)
	}
	if d.IngestWorkers < 0 {
		return fmt.Errorf("core: IngestWorkers must be non-negative (0 means GOMAXPROCS), got %d", c.IngestWorkers)
	}
	return nil
}
