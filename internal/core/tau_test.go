package core

import (
	"math"
	"testing"
	"testing/quick"
)

// graphWithPeaks builds a decision graph with `peaks` cells having an
// anomalously large δ (clear density peaks) and `others` ordinary cells
// with small δ.
func graphWithPeaks(peaks, others int, peakDelta, ordinaryDelta float64) []DecisionPoint {
	var graph []DecisionPoint
	id := int64(1)
	for i := 0; i < peaks; i++ {
		graph = append(graph, DecisionPoint{CellID: id, Rho: 100 + float64(i), Delta: peakDelta + float64(i)})
		id++
	}
	for i := 0; i < others; i++ {
		graph = append(graph, DecisionPoint{CellID: id, Rho: 50 + float64(i%20), Delta: ordinaryDelta + float64(i%5)*0.01})
		id++
	}
	return graph
}

func TestDefaultTauSelectorSeparatesPeaks(t *testing.T) {
	graph := graphWithPeaks(3, 40, 10, 0.5)
	tau := DefaultTauSelector(graph)
	if !(tau > 0.6 && tau < 10) {
		t.Errorf("tau = %v, want a value between the ordinary deltas (~0.5) and the peak deltas (>=10)", tau)
	}
	// Every peak must be above tau and every ordinary cell below it.
	for _, dp := range graph {
		if dp.Delta >= 10 && dp.Delta <= tau {
			t.Errorf("peak with delta %v not separated by tau %v", dp.Delta, tau)
		}
		if dp.Delta <= 0.6 && dp.Delta > tau {
			t.Errorf("ordinary cell with delta %v above tau %v", dp.Delta, tau)
		}
	}
}

func TestDefaultTauSelectorEdgeCases(t *testing.T) {
	if got := DefaultTauSelector(nil); got != 0 {
		t.Errorf("empty graph should yield 0, got %v", got)
	}
	// Graph with only infinite deltas (a single root) yields 0.
	graph := []DecisionPoint{{CellID: 1, Rho: 10, Delta: math.Inf(1)}}
	if got := DefaultTauSelector(graph); got != 0 {
		t.Errorf("graph with only the root should yield 0, got %v", got)
	}
	// Single finite delta: that delta is returned.
	graph = []DecisionPoint{
		{CellID: 1, Rho: 10, Delta: math.Inf(1)},
		{CellID: 2, Rho: 9, Delta: 2.5},
	}
	if got := DefaultTauSelector(graph); got != 2.5 {
		t.Errorf("single finite delta should be returned, got %v", got)
	}
}

func TestTauObjective(t *testing.T) {
	deltas := []float64{1, 2, 3, 4, 10, 12}
	// A tau separating the small deltas from the large ones must score
	// better (lower F) than degenerate splits.
	good := tauObjective(0.5, 4.5, deltas)
	if math.IsInf(good, 1) {
		t.Fatal("good split should have a finite objective")
	}
	if f := tauObjective(0.5, 0.5, deltas); !math.IsInf(f, 1) {
		t.Errorf("split with no intra distances should be +Inf, got %v", f)
	}
	if f := tauObjective(0.5, 20, deltas); !math.IsInf(f, 1) {
		t.Errorf("split with no inter distances should be +Inf, got %v", f)
	}
	if f := tauObjective(0.5, 5, nil); !math.IsInf(f, 1) {
		t.Errorf("empty delta set should be +Inf, got %v", f)
	}
	// Splitting inside the small-delta group moves ordinary deltas onto
	// the inter side and scores worse than the clean split.
	worse := tauObjective(0.5, 2.5, deltas)
	if !(good < worse) {
		t.Errorf("clean split F=%v should beat within-group split F=%v", good, worse)
	}
}

func TestMinimizeTauFindsTheGap(t *testing.T) {
	deltas := []float64{0.8, 0.9, 1.0, 1.1, 9, 10, 11}
	cands := candidateTaus(deltas)
	tau, ok := minimizeTau(0.5, cands, deltas)
	if !ok {
		t.Fatal("expected a finite minimizer")
	}
	if !(tau > 1.1 && tau < 9) {
		t.Errorf("optimal tau = %v, want a value inside the gap (1.1, 9)", tau)
	}
}

func TestCandidateTaus(t *testing.T) {
	if got := candidateTaus(nil); len(got) != 0 {
		t.Errorf("no deltas should give no candidates, got %v", got)
	}
	if got := candidateTaus([]float64{2}); len(got) != 1 || got[0] != 2 {
		t.Errorf("single delta should give itself, got %v", got)
	}
	got := candidateTaus([]float64{1, 1, 1})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("identical deltas should give one candidate, got %v", got)
	}
	got = candidateTaus([]float64{3, 1, 2})
	if len(got) != 2 {
		t.Errorf("three distinct deltas should give two midpoints, got %v", got)
	}
}

func TestFitAlphaRecoversPreference(t *testing.T) {
	deltas := []float64{0.8, 0.9, 1.0, 1.1, 9, 10, 11}
	// If the user separated the peaks (tau0 in the gap), the fitted
	// alpha must make the optimal tau land in the same gap.
	alpha := fitAlpha(5, deltas)
	if alpha <= 0 || alpha >= 1 {
		t.Fatalf("alpha = %v outside (0,1)", alpha)
	}
	tau, ok := minimizeTau(alpha, candidateTaus(deltas), deltas)
	if !ok {
		t.Fatal("no finite minimizer for fitted alpha")
	}
	if !(tau > 1.1 && tau < 9) {
		t.Errorf("with fitted alpha the optimal tau = %v, want it inside the gap the user chose", tau)
	}
	// Degenerate inputs fall back to 0.5.
	if got := fitAlpha(0, deltas); got != 0.5 {
		t.Errorf("fitAlpha with tau0=0 should fall back to 0.5, got %v", got)
	}
	if got := fitAlpha(5, nil); got != 0.5 {
		t.Errorf("fitAlpha with no deltas should fall back to 0.5, got %v", got)
	}
}

func TestTauTunerRetune(t *testing.T) {
	var tuner tauTuner
	tuner.initialize(5, 0, []float64{0.8, 0.9, 1.0, 1.1, 9, 10, 11})
	if tuner.tau != 5 {
		t.Fatalf("initial tau = %v, want 5", tuner.tau)
	}
	// The delta distribution shifts (clusters drift apart): retuning
	// must move tau into the new gap.
	newDeltas := []float64{2, 2.2, 2.4, 30, 32, math.Inf(1)}
	tau := tuner.retune(newDeltas)
	if !(tau > 2.4 && tau < 30) {
		t.Errorf("retuned tau = %v, want a value inside the new gap (2.4, 30)", tau)
	}
	// Degenerate distributions keep the previous tau.
	prev := tuner.tau
	if got := tuner.retune([]float64{math.Inf(1)}); got != prev {
		t.Errorf("degenerate retune changed tau: %v -> %v", prev, got)
	}
	if got := tuner.retune(nil); got != prev {
		t.Errorf("empty retune changed tau: %v -> %v", prev, got)
	}
}

func TestTauTunerAlphaOverride(t *testing.T) {
	var tuner tauTuner
	tuner.initialize(5, 0.3, []float64{1, 2, 3})
	if tuner.alpha != 0.3 {
		t.Errorf("alpha override not respected: %v", tuner.alpha)
	}
}

// Property: the objective is always positive (or +Inf) and candidate
// minimization never panics for arbitrary small delta sets.
func TestTauObjectiveQuick(t *testing.T) {
	prop := func(raw []uint16, alphaU uint8) bool {
		if len(raw) == 0 {
			return true
		}
		deltas := make([]float64, 0, len(raw))
		for _, r := range raw {
			deltas = append(deltas, 0.1+float64(r%500)/10)
		}
		alpha := 0.05 + float64(alphaU%90)/100
		tau, ok := minimizeTau(alpha, candidateTaus(deltas), deltas)
		if !ok {
			return true
		}
		f := tauObjective(alpha, tau, deltas)
		return f > 0 && !math.IsNaN(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
