package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/gen"
	"github.com/densitymountain/edmstream/internal/stream"
)

// blobStream builds a stream of n points drawn round-robin from
// isotropic Gaussian blobs at the given centers, stamped at the given
// arrival rate.
func blobStream(centers [][]float64, sigma float64, n int, rate float64, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]stream.Point, n)
	for i := range pts {
		k := i % len(centers)
		vec := make([]float64, len(centers[k]))
		for d := range vec {
			vec[d] = centers[k][d] + rng.NormFloat64()*sigma
		}
		pts[i] = stream.Point{
			ID:     int64(i),
			Vector: vec,
			Label:  k,
			Time:   float64(i) / rate,
		}
	}
	return pts
}

func feed(t *testing.T, e *EDMStream, pts []stream.Point) {
	t.Helper()
	for i := range pts {
		if err := e.Insert(pts[i]); err != nil {
			t.Fatalf("Insert(point %d): %v", i, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	valid := Config{Radius: 1}
	if err := valid.Validate(); err != nil {
		t.Errorf("minimal config should be valid: %v", err)
	}
	bad := []Config{
		{Radius: 0},
		{Radius: -1},
		{Radius: 1, Decay: stream.Decay{A: 2, Lambda: 1}},
		{Radius: 1, Rate: -5},
		{Radius: 1, Beta: 1.5},
		{Radius: 1, Tau: -1},
		{Radius: 1, Alpha: 1.5},
		{Radius: 1, InitPoints: -1},
		{Radius: 1, SweepInterval: -1},
		{Radius: 1, DeleteDelay: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	// A negative EvolutionInterval is the documented way to disable
	// automatic evolution checks, not an error.
	disabled := Config{Radius: 1, EvolutionInterval: -1}
	if err := disabled.Validate(); err != nil {
		t.Errorf("negative EvolutionInterval should disable tracking, got %v", err)
	}
	if got := disabled.withDefaults().EvolutionInterval; got != 0 {
		t.Errorf("negative EvolutionInterval resolved to %v, want 0 (disabled)", got)
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with zero config should fail (radius required)")
	}
}

func TestFilterModeString(t *testing.T) {
	cases := map[FilterMode]string{
		FilterNone:     "wf",
		FilterDensity:  "df",
		FilterTriangle: "tif",
		FilterAll:      "df+tif",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("FilterMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
}

func TestTwoClusterStream(t *testing.T) {
	pts := blobStream([][]float64{{0, 0}, {10, 10}}, 0.5, 4000, 1000, 1)
	e, err := New(Config{Radius: 0.8, Tau: 3, InitPoints: 300})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, pts)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.NumClusters() != 2 {
		t.Fatalf("got %d clusters, want 2 (snapshot: %+v)", snap.NumClusters(), snap)
	}
	// Each cluster's peak must be near one of the true centers.
	var nearOrigin, nearTen bool
	for _, c := range snap.Clusters {
		if len(c.CellIDs) == 0 || len(c.SeedPoints) != len(c.CellIDs) {
			t.Fatalf("malformed cluster info: %+v", c)
		}
		peak, ok := snap.Cluster(c.ID)
		if !ok || peak.ID != c.ID {
			t.Fatalf("Cluster(%d) lookup failed", c.ID)
		}
		var peakSeed stream.Point
		for i, id := range c.CellIDs {
			if id == c.PeakCellID {
				peakSeed = c.SeedPoints[i]
			}
		}
		d0 := distance.Euclid(peakSeed.Vector, []float64{0, 0})
		d1 := distance.Euclid(peakSeed.Vector, []float64{10, 10})
		if d0 < 2 {
			nearOrigin = true
		}
		if d1 < 2 {
			nearTen = true
		}
	}
	if !nearOrigin || !nearTen {
		t.Errorf("cluster peaks not near the true centers")
	}
	// The macro-cluster view used by the evaluation harness agrees.
	macro := snap.MacroClusters()
	if len(macro) != 2 {
		t.Errorf("MacroClusters = %d, want 2", len(macro))
	}
	assigned := stream.AssignToClusters(pts[len(pts)-500:], macro, 0)
	// Recent points must be split across the two macro clusters in a
	// label-consistent way.
	byLabel := map[int]map[int]int{}
	for i, a := range assigned {
		p := pts[len(pts)-500+i]
		if byLabel[p.Label] == nil {
			byLabel[p.Label] = map[int]int{}
		}
		byLabel[p.Label][a]++
	}
	for label, counts := range byLabel {
		best, total := 0, 0
		for _, c := range counts {
			total += c
			if c > best {
				best = c
			}
		}
		if float64(best) < 0.9*float64(total) {
			t.Errorf("label %d not consistently assigned: %v", label, counts)
		}
	}
}

func TestSnapshotPartitionInvariants(t *testing.T) {
	pts := blobStream([][]float64{{0, 0}, {6, 0}, {0, 6}}, 0.5, 3000, 1000, 2)
	e, err := New(Config{Radius: 0.8, Tau: 2.5, InitPoints: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
		if i%500 == 499 {
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("after %d points: %v", i+1, err)
			}
			snap := e.Snapshot()
			// Partition property: clusters are disjoint and cover all
			// active cells.
			seen := map[int64]bool{}
			total := 0
			for _, c := range snap.Clusters {
				for _, id := range c.CellIDs {
					if seen[id] {
						t.Fatalf("cell %d appears in two clusters", id)
					}
					seen[id] = true
					total++
				}
			}
			if total != snap.ActiveCells {
				t.Fatalf("clusters cover %d cells, active cells = %d", total, snap.ActiveCells)
			}
		}
	}
}

// TestFilterEquivalence verifies the central claim of Theorems 1 and 2:
// the filters skip only updates that cannot change anything, so the
// final clustering is identical with and without them.
func TestFilterEquivalence(t *testing.T) {
	pts := blobStream([][]float64{{0, 0}, {7, 0}, {3, 6}}, 0.6, 2500, 1000, 3)

	run := func(mode FilterMode) (Snapshot, Stats) {
		cfg := Config{Radius: 0.9, Tau: 2.5, InitPoints: 200}
		cfg.SetFilters(mode)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, e, pts)
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		return e.Snapshot(), e.Stats()
	}

	partition := func(s Snapshot) map[int64]int64 {
		// map cell id -> peak cell id (cluster identity independent of
		// tracker-assigned IDs)
		m := map[int64]int64{}
		for _, c := range s.Clusters {
			for _, id := range c.CellIDs {
				m[id] = c.PeakCellID
			}
		}
		return m
	}

	base, statsNone := run(FilterNone)
	basePart := partition(base)
	for _, mode := range []FilterMode{FilterDensity, FilterAll} {
		snap, stats := run(mode)
		part := partition(snap)
		if len(part) != len(basePart) {
			t.Fatalf("mode %v: %d clustered cells, want %d", mode, len(part), len(basePart))
		}
		for id, peak := range basePart {
			if part[id] != peak {
				t.Fatalf("mode %v: cell %d assigned to peak %d, want %d", mode, id, part[id], peak)
			}
		}
		if stats.FilteredByDensity == 0 {
			t.Errorf("mode %v: density filter never fired", mode)
		}
		if mode == FilterAll && stats.FilteredByTriangle == 0 {
			t.Errorf("mode %v: triangle filter never fired", mode)
		}
	}
	if statsNone.FilteredByDensity != 0 || statsNone.FilteredByTriangle != 0 {
		t.Errorf("wf run should not filter anything: %+v", statsNone)
	}
}

func TestSDSEvolutionEndToEnd(t *testing.T) {
	ds, err := gen.SDS(gen.SDSConfig{N: 10000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	src, err := ds.RateSource(1000)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Radius: 0.3, Tau: 2.0, InitPoints: 500, EvolutionInterval: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	streamSeconds := float64(ds.Len()) / 1000
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		if err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	events := e.Events()
	if len(events) == 0 {
		t.Fatal("no evolution events recorded")
	}
	kindTimes := map[EventKind][]float64{}
	for _, ev := range events {
		kindTimes[ev.Kind] = append(kindTimes[ev.Kind], ev.Time)
	}
	// All four scripted activity kinds must be observed.
	for _, k := range []EventKind{Emerge, Merge, Disappear, Split} {
		if len(kindTimes[k]) == 0 {
			t.Errorf("no %v event observed (events: %v)", k, events)
		}
	}
	// The merge of the two initial clusters must be observed before the
	// late-stream split of the new cluster.
	if len(kindTimes[Merge]) > 0 && len(kindTimes[Split]) > 0 {
		firstMerge := kindTimes[Merge][0]
		lastSplit := kindTimes[Split][len(kindTimes[Split])-1]
		if !(firstMerge < lastSplit) {
			t.Errorf("expected a merge (%.2fs) before the final split (%.2fs)", firstMerge, lastSplit)
		}
		if firstMerge > 0.6*streamSeconds {
			t.Errorf("first merge at %.2fs, expected before 60%% of the stream (%.2fs)", firstMerge, 0.6*streamSeconds)
		}
		if lastSplit < 0.5*streamSeconds {
			t.Errorf("last split at %.2fs, expected in the second half of the stream", lastSplit)
		}
	}
	// At the end of the stream there are exactly two clusters (C1, C2).
	final := e.Snapshot()
	if final.NumClusters() != 2 {
		t.Errorf("final snapshot has %d clusters, want 2", final.NumClusters())
	}
}

func TestPromotionDemotionDeletion(t *testing.T) {
	// Phase 1: points around (0,0) for 2 seconds. Phase 2: points
	// around (20,20) for 4 seconds. The first cluster must decay, be
	// demoted and eventually deleted.
	rate := 1000.0
	var pts []stream.Point
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6000; i++ {
		ts := float64(i) / rate
		center := []float64{0, 0}
		label := 0
		if ts >= 2.0 {
			center = []float64{20, 20}
			label = 1
		}
		pts = append(pts, stream.Point{
			ID:     int64(i),
			Vector: []float64{center[0] + rng.NormFloat64()*0.4, center[1] + rng.NormFloat64()*0.4},
			Label:  label,
			Time:   ts,
		})
	}
	e, err := New(Config{Radius: 0.6, Tau: 2, InitPoints: 300, SweepInterval: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, pts)
	stats := e.Stats()
	if stats.Promotions == 0 {
		t.Error("no cells were ever promoted into the DP-Tree")
	}
	if stats.Demotions == 0 {
		t.Error("no cells were ever demoted to the reservoir")
	}
	if stats.Deletions == 0 {
		t.Error("no outdated cells were ever deleted")
	}
	snap := e.Snapshot()
	if snap.NumClusters() != 1 {
		t.Fatalf("final snapshot has %d clusters, want only the recent one", snap.NumClusters())
	}
	peak := snap.Clusters[0].SeedPoints[0]
	if distance.Euclid(peak.Vector, []float64{20, 20}) > 5 {
		t.Errorf("final cluster is not the recent one (seed %v)", peak.Vector)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirStaysWithinBound(t *testing.T) {
	// A stream with a substantial fraction of scattered noise keeps
	// creating outlier cells; the reservoir must stay within the
	// theoretical bound of Sec. 4.4.
	rng := rand.New(rand.NewSource(5))
	rate := 1000.0
	var pts []stream.Point
	for i := 0; i < 8000; i++ {
		ts := float64(i) / rate
		var vec []float64
		label := 0
		if rng.Float64() < 0.3 {
			vec = []float64{rng.Float64()*200 - 100, rng.Float64()*200 - 100}
			label = stream.NoLabel
		} else {
			vec = []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5}
		}
		pts = append(pts, stream.Point{ID: int64(i), Vector: vec, Label: label, Time: ts})
	}
	e, err := New(Config{Radius: 0.8, Tau: 3, InitPoints: 300, SweepInterval: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	bound := e.ReservoirBound()
	if bound <= 0 {
		t.Fatalf("ReservoirBound = %v", bound)
	}
	maxSeen := 0
	for i, p := range pts {
		if err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
		if i%200 == 0 {
			if n := e.Stats().InactiveCells; n > maxSeen {
				maxSeen = n
			}
		}
	}
	if float64(maxSeen) > bound {
		t.Errorf("reservoir size %d exceeded the theoretical bound %v", maxSeen, bound)
	}
	if e.Stats().Deletions == 0 {
		t.Error("expected outdated outlier cells to be deleted")
	}
}

func TestTextStreamClustering(t *testing.T) {
	// Two clearly separated topics with Jaccard distance.
	rng := rand.New(rand.NewSource(6))
	topics := [][]string{
		{"google", "android", "wearable", "sdk", "watch"},
		{"apple", "iphone", "patent", "court", "samsung"},
	}
	var pts []stream.Point
	for i := 0; i < 3000; i++ {
		k := i % 2
		doc := distance.NewTokenSet(topics[k][0], topics[k][1])
		for j := 0; j < 3; j++ {
			doc.Add(topics[k][rng.Intn(len(topics[k]))])
		}
		pts = append(pts, stream.Point{ID: int64(i), Tokens: doc, Label: k, Time: float64(i) / 1000})
	}
	e, err := New(Config{Radius: 0.4, Tau: 0.8, InitPoints: 200})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, pts)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.NumClusters() != 2 {
		t.Fatalf("text stream produced %d clusters, want 2", snap.NumClusters())
	}
	// Each cluster's seeds must be dominated by one topic's tokens.
	for _, c := range snap.Clusters {
		var googleish, appleish int
		for _, seed := range c.SeedPoints {
			if seed.Tokens.Contains("google") || seed.Tokens.Contains("android") {
				googleish++
			}
			if seed.Tokens.Contains("apple") || seed.Tokens.Contains("iphone") {
				appleish++
			}
		}
		if googleish > 0 && appleish > 0 {
			t.Errorf("cluster %d mixes both topics (%d google-ish, %d apple-ish seeds)", c.ID, googleish, appleish)
		}
	}
}

func TestAdaptiveTauInitialization(t *testing.T) {
	pts := blobStream([][]float64{{0, 0}, {8, 0}}, 0.5, 3000, 1000, 8)
	e, err := New(Config{Radius: 0.8, AdaptiveTau: true, InitPoints: 400})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, pts)
	snap := e.Snapshot()
	if !(e.Alpha() > 0 && e.Alpha() < 1) {
		t.Errorf("alpha = %v, want a fitted value in (0,1)", e.Alpha())
	}
	if e.Tau() <= 0 {
		t.Errorf("tau = %v, want positive", e.Tau())
	}
	if snap.Tau != e.Tau() {
		t.Errorf("snapshot tau %v != current tau %v", snap.Tau, e.Tau())
	}
	if snap.NumClusters() != 2 {
		t.Errorf("adaptive tau produced %d clusters, want 2", snap.NumClusters())
	}
	// The decision graph is available and contains the active cells.
	graph := e.DecisionGraph()
	if len(graph) != snap.ActiveCells {
		t.Errorf("decision graph has %d entries, active cells %d", len(graph), snap.ActiveCells)
	}
	roots := 0
	for _, dp := range graph {
		if math.IsInf(dp.Delta, 1) {
			roots++
		}
		if dp.Rho <= 0 {
			t.Errorf("decision point with non-positive density: %+v", dp)
		}
	}
	if roots != 1 {
		t.Errorf("decision graph has %d roots, want exactly 1", roots)
	}
}

func TestInsertErrors(t *testing.T) {
	e, err := New(Config{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(stream.Point{}); err == nil {
		t.Error("point without vector or tokens should be rejected")
	}
	if err := e.Insert(stream.Point{Vector: []float64{math.NaN()}}); err == nil {
		t.Error("NaN point should be rejected")
	}
	if got := e.Stats().Points; got != 0 {
		t.Errorf("rejected points must not be counted, got %d", got)
	}
}

func TestSnapshotBeforeAndAfterInit(t *testing.T) {
	pts := blobStream([][]float64{{0, 0}}, 0.3, 100, 1000, 9)
	e, err := New(Config{Radius: 0.5, Tau: 1, InitPoints: 10000})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot before any point: empty but well-formed.
	empty := e.Snapshot()
	if empty.NumClusters() != 0 {
		t.Errorf("empty snapshot has %d clusters", empty.NumClusters())
	}
	feed(t, e, pts)
	// InitPoints was never reached, but Snapshot forces initialization.
	snap := e.Snapshot()
	if snap.ActiveCells == 0 {
		t.Error("forced initialization produced no active cells")
	}
	if snap.NumClusters() == 0 {
		t.Error("forced initialization produced no clusters")
	}
	if e.Name() != "EDMStream" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestClusterersInterfaceCompliance(t *testing.T) {
	var _ stream.Clusterer = (*EDMStream)(nil)
}

func TestOutOfOrderTimestamps(t *testing.T) {
	// A point whose timestamp is older than the current stream time
	// must not move the clock backwards or corrupt densities.
	e, err := New(Config{Radius: 1, Tau: 2, InitPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		ts := float64(i) / 1000
		if i%50 == 0 && i > 0 {
			ts = float64(i-40) / 1000 // occasionally stale timestamp
		}
		p := stream.Point{ID: int64(i), Vector: []float64{rng.NormFloat64(), rng.NormFloat64()}, Time: ts}
		if err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if e.Now() < 1.9 {
		t.Errorf("stream clock went backwards: now = %v", e.Now())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateAndIdenticalPoints(t *testing.T) {
	// A stream of identical points must produce exactly one cell and
	// one cluster, never NaNs or panics.
	e, err := New(Config{Radius: 0.5, Tau: 1, InitPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		p := stream.Point{ID: int64(i), Vector: []float64{1, 1}, Time: float64(i) / 1000}
		if err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Snapshot()
	if snap.ActiveCells != 1 {
		t.Errorf("identical points created %d active cells, want 1", snap.ActiveCells)
	}
	if snap.NumClusters() != 1 {
		t.Errorf("identical points produced %d clusters, want 1", snap.NumClusters())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	pts := blobStream([][]float64{{0, 0}, {5, 5}}, 0.5, 2000, 1000, 12)
	e, err := New(Config{Radius: 0.7, Tau: 2, InitPoints: 200, DetailedStats: true})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, pts)
	s := e.Stats()
	if s.Points != int64(len(pts)) {
		t.Errorf("Points = %d, want %d", s.Points, len(pts))
	}
	if s.CellsCreated == 0 || s.ActiveCells == 0 {
		t.Errorf("cell accounting broken: %+v", s)
	}
	if s.DependencyCandidates == 0 {
		t.Error("no dependency candidates were ever examined")
	}
	if s.FilteredByDensity == 0 {
		t.Error("density filter never fired on a clustered stream")
	}
	if s.AssignTime <= 0 || s.DependencyUpdateTime < 0 {
		t.Errorf("timing counters broken: %+v", s)
	}
	if s.ActiveCells+s.InactiveCells != int(s.CellsCreated)-int(s.Deletions) {
		t.Errorf("cell bookkeeping mismatch: %+v", s)
	}
}
