package core

// cellSlab indexes every live cluster-cell (active and inactive) by
// ID. Cell IDs are allocated monotonically and never reused, so the
// slab is a dense ID-indexed slice: resolving the cell behind an index
// candidate is a bounds check and a slice load instead of a map
// lookup, which matters on the per-point hot path where every probed
// seed candidate and dependency-filter hit resolves a cell.
//
// Deleted IDs leave nil holes. The holes cost one pointer per cell
// ever created — negligible next to the cells themselves, and the
// price of keeping IDs stable (IDs appear in snapshots and break
// distance ties, so reusing them would change clustering output).
type cellSlab struct {
	byID []*Cell
	n    int
}

// get returns the cell with the given ID, or nil when no such live
// cell exists.
func (s *cellSlab) get(id int64) *Cell {
	if id < 0 || id >= int64(len(s.byID)) {
		return nil
	}
	return s.byID[id]
}

// put registers a cell under its ID, growing the slab as needed.
func (s *cellSlab) put(c *Cell) {
	for int64(len(s.byID)) <= c.id {
		s.byID = append(s.byID, nil)
	}
	s.byID[c.id] = c
	s.n++
}

// remove deletes the cell with the given ID, leaving a nil hole.
func (s *cellSlab) remove(id int64) {
	if s.get(id) == nil {
		return
	}
	s.byID[id] = nil
	s.n--
}

// len returns the number of live cells.
func (s *cellSlab) len() int { return s.n }
