package core

import "time"

// Stats exposes the internal counters EDMStream maintains while
// processing a stream. They back the Fig. 11 experiment (accumulated
// dependency-update time with and without the filters) and the
// reservoir-size experiment of Fig. 16.
type Stats struct {
	// Points is the number of points processed.
	Points int64
	// CellsCreated is the number of cluster-cells ever created.
	CellsCreated int64
	// ActiveCells and InactiveCells are the current DP-Tree and
	// reservoir sizes.
	ActiveCells, InactiveCells int
	// Promotions counts reservoir → DP-Tree moves, Demotions the
	// reverse, Deletions the outdated cells removed from the reservoir.
	Promotions, Demotions, Deletions int64
	// DependencyCandidates is the number of (absorbing cell, other
	// cell) pairs examined during dependency updates; FilteredByDensity
	// and FilteredByTriangle count the pairs skipped by Theorem 1 and
	// Theorem 2 respectively; DependencyRelinks counts the pairs that
	// actually changed a dependency link.
	DependencyCandidates, FilteredByDensity, FilteredByTriangle, DependencyRelinks int64
	// DependencyUpdateTime is the accumulated wall-clock time spent in
	// dependency maintenance (the quantity plotted in Fig. 11). Only
	// collected when Config.DetailedStats is set; zero otherwise.
	DependencyUpdateTime time.Duration
	// AssignTime is the accumulated wall-clock time spent finding the
	// nearest seed for arriving points. Only collected when
	// Config.DetailedStats is set; zero otherwise.
	AssignTime time.Duration
	// SeedCandidates is the number of seed distances measured during
	// nearest-seed probes. With the linear index it equals
	// Points × live cells; the grid index keeps it near the local
	// neighborhood size, which is what makes assignment sublinear.
	// Points routed by the parallel route phase probe a frozen view
	// and are not counted here.
	SeedCandidates int64
	// SpeculativeRoutes is the number of batch points routed by the
	// parallel route phase against an epoch-frozen view of the seed
	// index; SpeculationMisses counts how many of those speculations
	// the serial apply phase had to override because of state it
	// changed after the snapshot was frozen (the speculated cell was
	// deleted by a mid-batch sweep, or a cell created mid-batch
	// claimed the point). The speculation hit rate is
	// 1 − SpeculationMisses/SpeculativeRoutes.
	SpeculativeRoutes, SpeculationMisses int64
	// EvolutionEvents is the number of evolution events recorded so far.
	EvolutionEvents int64
}
