package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

// equivRun drives one EDMStream over pts with the given index policy,
// taking a snapshot every snapEvery points (plus a final one), and
// returns the instance together with the collected snapshots.
func equivRun(t *testing.T, cfg Config, pts []stream.Point, snapEvery int) (*EDMStream, []Snapshot) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", cfg.IndexPolicy, err)
	}
	var snaps []Snapshot
	for i := range pts {
		if err := e.Insert(pts[i]); err != nil {
			t.Fatalf("%v: Insert(point %d): %v", cfg.IndexPolicy, i, err)
		}
		if snapEvery > 0 && (i+1)%snapEvery == 0 {
			snaps = append(snaps, e.Snapshot())
		}
	}
	snaps = append(snaps, e.Snapshot())
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("%v: %v", cfg.IndexPolicy, err)
	}
	return e, snaps
}

// compareSnapshots asserts two snapshot sequences are identical:
// cluster IDs, peaks, member cells, weights and cell counts.
func compareSnapshots(t *testing.T, grid, linear []Snapshot) {
	t.Helper()
	if len(grid) != len(linear) {
		t.Fatalf("snapshot counts differ: grid %d, linear %d", len(grid), len(linear))
	}
	for i := range grid {
		g, l := grid[i], linear[i]
		if g.Time != l.Time || g.Tau != l.Tau || g.ActiveCells != l.ActiveCells || g.OutlierCells != l.OutlierCells {
			t.Fatalf("snapshot %d header differs:\n  grid   %+v\n  linear %+v", i,
				Snapshot{Time: g.Time, Tau: g.Tau, ActiveCells: g.ActiveCells, OutlierCells: g.OutlierCells},
				Snapshot{Time: l.Time, Tau: l.Tau, ActiveCells: l.ActiveCells, OutlierCells: l.OutlierCells})
		}
		if len(g.Clusters) != len(l.Clusters) {
			t.Fatalf("snapshot %d: cluster counts differ: grid %d, linear %d", i, len(g.Clusters), len(l.Clusters))
		}
		for j := range g.Clusters {
			gc, lc := g.Clusters[j], l.Clusters[j]
			if gc.ID != lc.ID || gc.PeakCellID != lc.PeakCellID || gc.Weight != lc.Weight || gc.Points != lc.Points {
				t.Fatalf("snapshot %d cluster %d differs: grid {id %d peak %d w %v n %d}, linear {id %d peak %d w %v n %d}",
					i, j, gc.ID, gc.PeakCellID, gc.Weight, gc.Points, lc.ID, lc.PeakCellID, lc.Weight, lc.Points)
			}
			if len(gc.CellIDs) != len(lc.CellIDs) {
				t.Fatalf("snapshot %d cluster %d: member counts differ: grid %d, linear %d", i, j, len(gc.CellIDs), len(lc.CellIDs))
			}
			for k := range gc.CellIDs {
				if gc.CellIDs[k] != lc.CellIDs[k] {
					t.Fatalf("snapshot %d cluster %d member %d differs: grid cell %d, linear cell %d",
						i, j, k, gc.CellIDs[k], lc.CellIDs[k])
				}
			}
		}
	}
}

// compareCells asserts two runs ended with byte-identical cell
// populations: same IDs, seeds, counts, densities, activity and
// dependency structure.
func compareCells(t *testing.T, grid, linear *EDMStream) {
	t.Helper()
	if grid.cells.len() != linear.cells.len() {
		t.Fatalf("cell counts differ: grid %d, linear %d", grid.cells.len(), linear.cells.len())
	}
	for _, gc := range grid.cells.byID {
		if gc == nil {
			continue
		}
		id := gc.id
		lc := linear.cells.get(id)
		if lc == nil {
			t.Fatalf("cell %d exists only in the grid run", id)
		}
		if gc.count != lc.count || gc.rho != lc.rho || gc.rhoTime != lc.rhoTime || gc.active != lc.active {
			t.Fatalf("cell %d state differs: grid {n %d ρ %v t %v active %v}, linear {n %d ρ %v t %v active %v}",
				id, gc.count, gc.rho, gc.rhoTime, gc.active, lc.count, lc.rho, lc.rhoTime, lc.active)
		}
		for d := range gc.seed.Vector {
			if gc.seed.Vector[d] != lc.seed.Vector[d] {
				t.Fatalf("cell %d seed differs in dim %d: %v vs %v", id, d, gc.seed.Vector[d], lc.seed.Vector[d])
			}
		}
		gdep, ldep := int64(-1), int64(-1)
		if gc.dep != nil {
			gdep = gc.dep.id
		}
		if lc.dep != nil {
			ldep = lc.dep.id
		}
		if gdep != ldep || gc.delta != lc.delta {
			t.Fatalf("cell %d dependency differs: grid (dep %d, δ %v), linear (dep %d, δ %v)",
				id, gdep, gc.delta, ldep, lc.delta)
		}
	}
}

// compareEvents asserts two evolution logs are identical.
func compareEvents(t *testing.T, grid, linear []Event) {
	t.Helper()
	if len(grid) != len(linear) {
		t.Fatalf("event counts differ: grid %d, linear %d", len(grid), len(linear))
	}
	for i := range grid {
		g, l := grid[i], linear[i]
		if g.Kind != l.Kind || g.Time != l.Time {
			t.Fatalf("event %d differs: grid %v, linear %v", i, g, l)
		}
	}
}

// TestIndexEquivalenceRandomStreams is the property test required by
// the index subsystem: on seeded random Euclidean streams, a
// grid-indexed run and a linear-scan run must produce identical cell
// populations, snapshots and evolution events. The grid only changes
// which candidates the nearest-seed and dependency searches touch,
// never their answers, so any divergence is a bug in the index.
func TestIndexEquivalenceRandomStreams(t *testing.T) {
	seeds := []int64{1, 7, 42, 99, 1234}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		clusters := 2 + rng.Intn(3)
		centers := make([][]float64, clusters)
		for i := range centers {
			centers[i] = []float64{rng.Float64()*20 - 10, rng.Float64()*20 - 10}
		}
		noise := 0.1 + 0.2*rng.Float64()
		radius := 0.5 + rng.Float64()

		n := 2500
		pts := make([]stream.Point, n)
		for i := range pts {
			var vec []float64
			if rng.Float64() < noise {
				vec = []float64{rng.Float64()*40 - 20, rng.Float64()*40 - 20}
			} else {
				c := centers[rng.Intn(clusters)]
				vec = []float64{c[0] + rng.NormFloat64()*0.6, c[1] + rng.NormFloat64()*0.6}
			}
			pts[i] = stream.Point{ID: int64(i), Vector: vec, Time: float64(i) / 1000, Label: stream.NoLabel}
		}

		cfg := Config{
			Radius:            radius,
			InitPoints:        200,
			AdaptiveTau:       seed%2 == 0, // exercise both τ modes
			Tau:               2.5,
			EvolutionInterval: 0.25,
			SweepInterval:     0.2,
		}
		gridCfg, linCfg := cfg, cfg
		gridCfg.IndexPolicy = IndexGrid
		linCfg.IndexPolicy = IndexLinear

		gridRun, gridSnaps := equivRun(t, gridCfg, pts, 500)
		linRun, linSnaps := equivRun(t, linCfg, pts, 500)

		if got := gridRun.IndexKind(); got != "grid" {
			t.Fatalf("seed %d: grid run resolved to %q", seed, got)
		}
		if got := linRun.IndexKind(); got != "linear" {
			t.Fatalf("seed %d: linear run resolved to %q", seed, got)
		}

		compareSnapshots(t, gridSnaps, linSnaps)
		compareCells(t, gridRun, linRun)
		compareEvents(t, gridRun.Events(), linRun.Events())

		gs, ls := gridRun.Stats(), linRun.Stats()
		if gs.CellsCreated != ls.CellsCreated || gs.Promotions != ls.Promotions ||
			gs.Demotions != ls.Demotions || gs.Deletions != ls.Deletions {
			t.Fatalf("seed %d: lifecycle counters differ:\n  grid   %+v\n  linear %+v", seed, gs, ls)
		}
		if gridRun.Tau() != linRun.Tau() {
			t.Fatalf("seed %d: τ differs: grid %v, linear %v", seed, gridRun.Tau(), linRun.Tau())
		}
		// The whole point of the grid: it must measure far fewer seed
		// distances than the linear scan on a multi-cell 2-D stream.
		if gs.SeedCandidates >= ls.SeedCandidates {
			t.Fatalf("seed %d: grid measured %d seed distances, linear %d — no pruning happened",
				seed, gs.SeedCandidates, ls.SeedCandidates)
		}
	}
}

// TestIndexEquivalenceMixedStream pins the equivalence guarantee on a
// degenerate stream mixing numeric and token-set points: the grid
// files token-set seeds in a side set and must still give them the
// same absorption behavior the linear scan does.
func TestIndexEquivalenceMixedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	topics := [][]string{{"gpu", "ai"}, {"vote", "poll"}, {"rain", "storm"}}
	n := 1500
	pts := make([]stream.Point, n)
	for i := range pts {
		p := stream.Point{ID: int64(i), Time: float64(i) / 1000, Label: stream.NoLabel}
		// The first point must be numeric so the grid policy resolves
		// to the grid (a leading token-set point forces the linear
		// fallback even under IndexGrid).
		if i%3 == 2 {
			topic := topics[rng.Intn(len(topics))]
			tokens := map[string]struct{}{topic[0]: {}, topic[1]: {}}
			if rng.Float64() < 0.5 {
				tokens["extra"] = struct{}{}
			}
			p.Tokens = tokens
		} else {
			p.Vector = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		pts[i] = p
	}
	cfg := Config{Radius: 0.7, Tau: 2, InitPoints: 150, EvolutionInterval: 0.25, SweepInterval: 0.2}
	gridCfg, linCfg := cfg, cfg
	gridCfg.IndexPolicy = IndexGrid
	linCfg.IndexPolicy = IndexLinear
	gridRun, gridSnaps := equivRun(t, gridCfg, pts, 500)
	linRun, linSnaps := equivRun(t, linCfg, pts, 500)
	if gridRun.IndexKind() != "grid" || linRun.IndexKind() != "linear" {
		t.Fatalf("index kinds: %q, %q", gridRun.IndexKind(), linRun.IndexKind())
	}
	compareSnapshots(t, gridSnaps, linSnaps)
	compareCells(t, gridRun, linRun)
	compareEvents(t, gridRun.Events(), linRun.Events())
}

// TestIndexAutoSelection checks the IndexAuto heuristic: grid for
// low-dimensional numeric streams, linear for high-dimensional and
// token-set streams, and honoring explicit overrides.
func TestIndexAutoSelection(t *testing.T) {
	lowD := stream.Point{ID: 1, Vector: []float64{1, 2}, Time: 0, Label: stream.NoLabel}
	highD := stream.Point{ID: 1, Vector: make([]float64, maxAutoGridDim+1), Time: 0, Label: stream.NoLabel}
	text := stream.Point{ID: 1, Tokens: map[string]struct{}{"a": {}}, Time: 0, Label: stream.NoLabel}

	cases := []struct {
		name   string
		policy IndexPolicy
		first  stream.Point
		want   string
	}{
		{"auto low-d", IndexAuto, lowD, "grid"},
		{"auto high-d", IndexAuto, highD, "linear"},
		{"auto text", IndexAuto, text, "linear"},
		{"forced grid", IndexGrid, lowD, "grid"},
		{"forced grid high-d", IndexGrid, highD, "grid"},
		{"forced grid text", IndexGrid, text, "linear"},
		{"forced linear", IndexLinear, lowD, "linear"},
	}
	for _, tc := range cases {
		e, err := New(Config{Radius: 0.5, IndexPolicy: tc.policy})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := e.Insert(tc.first); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := e.IndexKind(); got != tc.want {
			t.Errorf("%s: resolved to %q, want %q", tc.name, got, tc.want)
		}
	}
	if err := (Config{Radius: 1, IndexPolicy: IndexPolicy(9)}).Validate(); err == nil {
		t.Error("unknown index policy passed validation")
	}
}

// TestGridIndexRemovalConsistency exercises cell deletion through the
// index: a burst of outliers must be deleted after DeleteDelay and the
// seed index must shrink with the cell map.
func TestGridIndexRemovalConsistency(t *testing.T) {
	e, err := New(Config{Radius: 0.5, Tau: 2, InitPoints: 50, IndexPolicy: IndexGrid, SweepInterval: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// A dense blob keeps the stream alive; scattered one-off outliers
	// must eventually be deleted.
	for i := 0; i < 4000; i++ {
		var vec []float64
		if i%20 == 5 {
			vec = []float64{rng.Float64()*1000 - 500, rng.Float64()*1000 - 500}
		} else {
			vec = []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}
		}
		p := stream.Point{ID: int64(i), Vector: vec, Time: float64(i) / 100, Label: stream.NoLabel}
		if err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Deletions == 0 {
		t.Fatal("no cells were deleted; the test is not exercising index removal")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if math.IsInf(e.Tau(), 0) || math.IsNaN(e.Tau()) {
		t.Fatalf("bad tau %v", e.Tau())
	}
}
