package core

import (
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

// driftStream generates a 2-D stream whose second cluster drifts
// toward the first and back again, forcing the full evolution
// vocabulary: the approach merges the two density mountains (their
// dependency link drops below τ), the retreat splits them again, and
// the density fluctuations along the way produce adjusts, emerges and
// disappears. The incremental-vs-full equivalence test needs all of
// these transitions, not just a stationary partition.
func driftStream(seed int64, n int) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]stream.Point, 0, n)
	for len(pts) < n {
		frac := float64(len(pts)) / float64(n)
		// B's center swings from x=10 in to x=2 and back out.
		var bx float64
		switch {
		case frac < 0.35:
			bx = 10 - frac/0.35*8
		case frac < 0.65:
			bx = 2
		default:
			bx = 2 + (frac-0.65)/0.35*8
		}
		var cx, cy float64
		switch rng.Intn(6) {
		case 0, 1:
			cx, cy = 0, 0
		case 2, 3:
			cx, cy = bx, 0
		case 4:
			// A transient blob active only in the middle of the stream:
			// it emerges, then starves, decays and disappears.
			if frac < 0.3 || frac > 0.5 {
				continue
			}
			cx, cy = 5, 5
		default:
			// Noise over the whole span exercises the reservoir and
			// emerge/disappear paths.
			pts = append(pts, stream.Point{
				ID:     int64(len(pts)),
				Vector: []float64{rng.Float64()*16 - 3, rng.Float64()*8 - 4},
				Time:   float64(len(pts)) / 1000,
				Label:  stream.NoLabel,
			})
			continue
		}
		burst := 1 + rng.Intn(6)
		jx := cx + rng.NormFloat64()*0.5
		jy := cy + rng.NormFloat64()*0.5
		for b := 0; b < burst && len(pts) < n; b++ {
			pts = append(pts, stream.Point{
				ID:     int64(len(pts)),
				Vector: []float64{jx + rng.NormFloat64()*0.15, jy + rng.NormFloat64()*0.15},
				Time:   float64(len(pts)) / 1000,
				Label:  stream.NoLabel,
			})
		}
	}
	return pts
}

// extractRun feeds pts into a fresh engine (incremental or full
// extraction) in batches of batchSize, snapshotting every snapEvery
// points. After every snapshot the incremental engine's cached
// partition is cross-checked against a from-scratch msdSubtrees
// computation.
func extractRun(t *testing.T, cfg Config, pts []stream.Point, batchSize, snapEvery int, full bool) (*EDMStream, []Snapshot) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetFullExtraction(full)
	var snaps []Snapshot
	for i := 0; i < len(pts); i += batchSize {
		end := i + batchSize
		if end > len(pts) {
			end = len(pts)
		}
		if err := e.InsertBatch(pts[i:end]); err != nil {
			t.Fatalf("InsertBatch(%d:%d): %v", i, end, err)
		}
		if end%snapEvery == 0 || end == len(pts) {
			snaps = append(snaps, e.Snapshot())
			if !full {
				if msg := e.tree.checkExtraction(); msg != "" {
					t.Fatalf("after %d points: %s", end, msg)
				}
			}
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return e, snaps
}

// TestIncrementalFullEquivalence is the incremental-extraction
// property test: across index policies, batch sizes, static and
// adaptive τ, an engine using incremental extraction must produce
// byte-identical snapshots (cluster IDs, peaks, members, weights) and
// byte-identical evolution logs to an engine rebuilding the partition
// from scratch at every refresh. Dirty-subtree tracking, the
// evolution-diff skip and view reuse only change how much work a
// refresh does, never its outcome.
func TestIncrementalFullEquivalence(t *testing.T) {
	streams := map[string][]stream.Point{
		"drift":  driftStream(19, 6000),
		"bursty": burstyStream(7, 3000, 3, 0.15),
	}
	cfgs := map[string]Config{
		"static": {
			Radius: 0.8, Tau: 2.5, InitPoints: 200,
			EvolutionInterval: 0.25, SweepInterval: 0.2,
		},
		"adaptive": {
			Radius: 0.8, AdaptiveTau: true, Tau: 2.5, InitPoints: 200,
			EvolutionInterval: 0.25, SweepInterval: 0.2,
		},
	}
	const snapEvery = 500
	batchSizes := []int{1, 25, 250}

	for sname, pts := range streams {
		for cname, cfg := range cfgs {
			for _, policy := range []IndexPolicy{IndexGrid, IndexLinear} {
				cfg := cfg
				cfg.IndexPolicy = policy
				fullRun, fullSnaps := extractRun(t, cfg, pts, snapEvery, snapEvery, true)
				for _, bs := range batchSizes {
					t.Run(sname+"/"+cname+"/"+policy.String(), func(t *testing.T) {
						incRun, incSnaps := extractRun(t, cfg, pts, bs, snapEvery, false)
						compareSnapshots(t, incSnaps, fullSnaps)
						compareCells(t, incRun, fullRun)
						compareEvents(t, incRun.Events(), fullRun.Events())
						if incRun.Tau() != fullRun.Tau() {
							t.Fatalf("τ differs: incremental %v, full %v", incRun.Tau(), fullRun.Tau())
						}
					})
				}
			}
		}
	}
}

// TestDriftStreamCoversEvolution pins that the drift stream actually
// exercises splits and merges (otherwise the equivalence test above
// silently loses its hardest cases).
func TestDriftStreamCoversEvolution(t *testing.T) {
	cfg := Config{Radius: 0.8, Tau: 2.5, InitPoints: 200, EvolutionInterval: 0.25, SweepInterval: 0.2}
	e, _ := extractRun(t, cfg, driftStream(19, 6000), 25, 500, false)
	kinds := map[EventKind]int{}
	for _, ev := range e.Events() {
		kinds[ev.Kind]++
	}
	for _, k := range []EventKind{Emerge, Disappear, Split, Merge, Adjust} {
		if kinds[k] == 0 {
			t.Errorf("drift stream produced no %s events: %v", k, kinds)
		}
	}
}

// TestIncrementalAssignMatchesSnapshot checks the read-side query
// against ground truth: every cell seed in the published snapshot must
// be assigned to its own cluster, and a point far from every seed must
// be an outlier.
func TestIncrementalAssignMatchesSnapshot(t *testing.T) {
	cfg := Config{Radius: 0.8, Tau: 2.5, InitPoints: 200, EvolutionInterval: 0.25, SweepInterval: 0.2}
	e, snaps := extractRun(t, cfg, burstyStream(7, 3000, 3, 0.15), 25, 500, false)
	snap := snaps[len(snaps)-1]
	if snap.NumClusters() == 0 {
		t.Fatal("no clusters to query")
	}
	checked := 0
	for _, cl := range snap.Clusters {
		for _, seed := range cl.SeedPoints {
			id, ok := e.Assign(seed)
			if !ok {
				t.Fatalf("cluster %d seed not assigned", cl.ID)
			}
			if id != cl.ID {
				// A seed can legitimately sit within the radius of a
				// closer seed from another cluster; verify against the
				// nearest-seed rule before failing.
				if nearest := nearestSnapshotCluster(snap, seed); nearest != id {
					t.Fatalf("Assign = %d, nearest-seed rule says %d", id, nearest)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no seeds checked")
	}
	if _, ok := e.Assign(stream.Point{Vector: []float64{1e6, 1e6}, Time: e.Now()}); ok {
		t.Fatal("far-away point was assigned to a cluster")
	}
}

// nearestSnapshotCluster is the naive reference for Assign: the
// cluster of the seed nearest to p within the engine radius, ties to
// the lowest cell ID.
func nearestSnapshotCluster(snap Snapshot, p stream.Point) int {
	best := -1
	bestDist := 0.0
	var bestCell int64
	for _, cl := range snap.Clusters {
		for i, seed := range cl.SeedPoints {
			d := seed.Distance(p)
			if d > 0.8 {
				continue
			}
			if best == -1 || d < bestDist || (d == bestDist && cl.CellIDs[i] < bestCell) {
				best, bestDist, bestCell = cl.ID, d, cl.CellIDs[i]
			}
		}
	}
	return best
}
