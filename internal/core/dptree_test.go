package core

import (
	"math"
	"testing"
)

// buildTestTree creates a DP-Tree with cells at the given 1-D positions
// and densities (densities are set directly, all anchored at time 0).
// It wires every dependency with computeDependency.
func buildTestTree(t *testing.T, positions []float64, densities []float64) (*dpTree, []*Cell) {
	t.Helper()
	if len(positions) != len(densities) {
		t.Fatalf("positions and densities length mismatch")
	}
	tree := newDPTree(testDecay())
	cells := make([]*Cell, len(positions))
	for i := range positions {
		c := newCell(int64(i+1), numericPoint(int64(i), 0, positions[i]))
		c.rho = densities[i]
		c.rhoTime = 0
		cells[i] = c
		tree.insert(c)
	}
	for _, c := range cells {
		tree.computeDependency(c, 0)
	}
	if msg := tree.checkInvariants(0); msg != "" {
		t.Fatalf("test tree violates invariants: %s", msg)
	}
	return tree, cells
}

func TestComputeDependencyBasic(t *testing.T) {
	// Two density mountains on a line:
	//   positions: 0    1    2    10   11   12
	//   densities: 9    10   8    5    6    4
	// Peak of the left mountain is position 1 (density 10, the global
	// root); peak of the right mountain is position 11 (density 6),
	// which depends on the left mountain across the valley.
	tree, cells := buildTestTree(t,
		[]float64{0, 1, 2, 10, 11, 12},
		[]float64{9, 10, 8, 5, 6, 4},
	)
	root := tree.root()
	if root != cells[1] {
		t.Fatalf("root should be the densest cell, got cell %d", root.ID())
	}
	if !math.IsInf(cells[1].Delta(), 1) {
		t.Errorf("root delta = %v, want +Inf", cells[1].Delta())
	}
	wantDeps := map[int]int{
		0: 1, // position 0 depends on position 1
		2: 1, // position 2 depends on position 1
		3: 4, // position 10 depends on position 11
		5: 4, // position 12 depends on position 11
		4: 2, // the right peak depends on the nearest higher-density cell, position 2
	}
	for idx, depIdx := range wantDeps {
		if cells[idx].Dependency() != cells[depIdx] {
			gotID := int64(-1)
			if cells[idx].Dependency() != nil {
				gotID = cells[idx].Dependency().ID()
			}
			t.Errorf("cell at position %v depends on cell %d, want cell %d", cells[idx].seed.Vector[0], gotID, cells[depIdx].ID())
		}
	}
	// Dependent distances are the actual seed distances.
	if math.Abs(cells[4].Delta()-9) > 1e-12 {
		t.Errorf("right peak delta = %v, want 9", cells[4].Delta())
	}
}

func TestMSDSubtrees(t *testing.T) {
	tree, cells := buildTestTree(t,
		[]float64{0, 1, 2, 10, 11, 12},
		[]float64{9, 10, 8, 5, 6, 4},
	)
	// With τ = 3 the long link (length 9) across the valley is weak, so
	// there are two clusters (two density mountains).
	subtrees := tree.msdSubtrees(3)
	if len(subtrees) != 2 {
		t.Fatalf("got %d MSDSubTrees with tau=3, want 2", len(subtrees))
	}
	sizes := map[int64]int{}
	for peak, members := range subtrees {
		sizes[peak.ID()] = len(members)
	}
	if sizes[cells[1].ID()] != 3 || sizes[cells[4].ID()] != 3 {
		t.Errorf("subtree sizes = %v, want 3 and 3", sizes)
	}
	// With τ = 100 every link is strong: one cluster.
	if got := tree.msdSubtrees(100); len(got) != 1 {
		t.Errorf("got %d MSDSubTrees with tau=100, want 1", len(got))
	}
	// With τ = 0.5 even the within-mountain links (length 1) are weak:
	// every cell is its own cluster.
	if got := tree.msdSubtrees(0.5); len(got) != len(cells) {
		t.Errorf("got %d MSDSubTrees with tau=0.5, want %d", len(got), len(cells))
	}
}

func TestPeakOf(t *testing.T) {
	tree, cells := buildTestTree(t,
		[]float64{0, 1, 2, 10, 11, 12},
		[]float64{9, 10, 8, 5, 6, 4},
	)
	if got := tree.peakOf(cells[5], 3); got != cells[4] {
		t.Errorf("peakOf(position 12, tau=3) = cell %d, want the right peak", got.ID())
	}
	if got := tree.peakOf(cells[5], 100); got != cells[1] {
		t.Errorf("peakOf(position 12, tau=100) = cell %d, want the global root", got.ID())
	}
	if got := tree.peakOf(cells[1], 3); got != cells[1] {
		t.Errorf("peakOf(root) should be the root itself")
	}
}

func TestRetargetLower(t *testing.T) {
	tree, cells := buildTestTree(t,
		[]float64{0, 1, 2, 10, 11, 12},
		[]float64{9, 10, 8, 5, 6, 4},
	)
	// Insert a brand-new dense cell at position 9.5: the right-mountain
	// cells are all lower-density and closer to it than to their old
	// dependencies, so they must relink.
	c := newCell(100, numericPoint(100, 0, 9.5))
	c.rho = 7
	tree.insert(c)
	tree.computeDependency(c, 0)
	tree.retargetLower(c, 0)
	if msg := tree.checkInvariants(0); msg != "" {
		t.Fatalf("invariants violated after retarget: %s", msg)
	}
	if cells[4].Dependency() != c {
		t.Errorf("right peak should now depend on the new cell")
	}
	if cells[3].Dependency() != c {
		t.Errorf("position 10 should now depend on the new cell (distance 0.5 < 1)")
	}
	// The new cell itself depends on the nearest higher-density cell,
	// which is position 2 (density 8).
	if c.Dependency() != cells[2] {
		t.Errorf("new cell depends on cell %d, want position-2 cell", c.Dependency().ID())
	}
}

func TestRemoveAndSubtree(t *testing.T) {
	tree, cells := buildTestTree(t,
		[]float64{0, 1, 2, 10, 11, 12},
		[]float64{9, 10, 8, 5, 6, 4},
	)
	sub := tree.subtree(cells[4])
	if len(sub) != 3 {
		t.Fatalf("right-peak subtree has %d cells, want 3", len(sub))
	}
	tree.remove(cells[4])
	if cells[4].Active() {
		t.Error("removed cell still marked active")
	}
	if tree.size() != 5 {
		t.Errorf("tree size after remove = %d, want 5", tree.size())
	}
	// Its children lost their dependency.
	if cells[3].Dependency() != nil || cells[5].Dependency() != nil {
		t.Error("children of a removed cell should have their dependency cleared")
	}
	// After recomputing the orphans' dependencies, invariants hold again.
	tree.computeDependency(cells[3], 0)
	tree.computeDependency(cells[5], 0)
	if msg := tree.checkInvariants(0); msg != "" {
		t.Errorf("invariants violated after re-linking orphans: %s", msg)
	}
}

func TestEmptyAndSingletonTree(t *testing.T) {
	tree := newDPTree(testDecay())
	if tree.root() != nil {
		t.Error("empty tree should have no root")
	}
	if msg := tree.checkInvariants(0); msg != "" {
		t.Errorf("empty tree should satisfy invariants: %s", msg)
	}
	if got := tree.msdSubtrees(1); len(got) != 0 {
		t.Errorf("empty tree should have no subtrees, got %d", len(got))
	}
	c := newCell(1, numericPoint(0, 0, 5))
	tree.insert(c)
	tree.computeDependency(c, 0)
	if tree.root() != c {
		t.Error("singleton tree root should be the only cell")
	}
	if got := tree.msdSubtrees(1); len(got) != 1 {
		t.Errorf("singleton tree should have exactly one subtree")
	}
	if msg := tree.checkInvariants(0); msg != "" {
		t.Errorf("singleton tree invariants: %s", msg)
	}
}

func TestDensityMonotoneAlongDependencyChain(t *testing.T) {
	// Walking up any dependency chain, density must be non-decreasing —
	// the defining property of a density mountain.
	tree, cells := buildTestTree(t,
		[]float64{0, 1, 2, 3, 10, 11, 12, 20, 21},
		[]float64{5, 9, 7, 3, 6, 8, 2, 4, 4.5},
	)
	for _, c := range cells {
		for cur := c; cur.Dependency() != nil; cur = cur.Dependency() {
			if cur.Density(0, tree.decay) > cur.Dependency().Density(0, tree.decay) {
				t.Fatalf("cell %d has higher density than its dependency", cur.ID())
			}
		}
	}
}
