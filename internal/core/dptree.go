package core

import (
	"math"

	"github.com/densitymountain/edmstream/internal/stream"
)

// dpTree holds the active cluster-cells and the dependency links
// between them (Sec. 2.2). Each active cell points at its nearest
// active cell with higher density; the cell with the globally highest
// density is the root and has no dependency. Clusters are the maximal
// strongly dependent subtrees obtained by cutting every link longer
// than τ (Def. 2).
type dpTree struct {
	cells map[int64]*Cell
	decay stream.Decay
}

func newDPTree(d stream.Decay) *dpTree {
	return &dpTree{cells: make(map[int64]*Cell), decay: d}
}

// size returns the number of active cells.
func (t *dpTree) size() int { return len(t.cells) }

// insert adds a cell to the tree without wiring dependencies; callers
// are responsible for calling computeDependency and retargetLower.
func (t *dpTree) insert(c *Cell) {
	c.active = true
	t.cells[c.id] = c
}

// remove detaches the cell from the tree: it is unlinked from its
// dependency, its children lose their dependency (the caller decides
// what happens to them), and it is marked inactive.
func (t *dpTree) remove(c *Cell) {
	t.unlink(c)
	for _, child := range c.children {
		child.dep = nil
		child.delta = math.Inf(1)
	}
	c.children = make(map[int64]*Cell)
	c.active = false
	delete(t.cells, c.id)
}

// link sets c's dependency to dep at distance delta, maintaining the
// children index.
func (t *dpTree) link(c, dep *Cell, delta float64) {
	if c.dep == dep {
		c.delta = delta
		return
	}
	t.unlink(c)
	c.dep = dep
	c.delta = delta
	if dep != nil {
		dep.children[c.id] = c
	}
}

// unlink clears c's dependency.
func (t *dpTree) unlink(c *Cell) {
	if c.dep != nil {
		delete(c.dep.children, c.id)
	}
	c.dep = nil
	c.delta = math.Inf(1)
}

// computeDependency finds c's nearest active cell with higher density
// at time now and links it. If no active cell outranks c, c becomes a
// root (no dependency).
func (t *dpTree) computeDependency(c *Cell, now float64) {
	var best *Cell
	bestDist := math.Inf(1)
	for _, o := range t.cells {
		if o == c {
			continue
		}
		if !higherRanked(o, c, now, t.decay) {
			continue
		}
		d := c.distanceToCell(o)
		if d < bestDist {
			bestDist = d
			best = o
		}
	}
	if best == nil {
		t.unlink(c)
		return
	}
	t.link(c, best, bestDist)
}

// retargetLower checks every active cell ranked below c and relinks it
// to c when c is closer than its current dependency. It is the
// complement of computeDependency when a cell enters the tree or rises
// in density: those lower-ranked cells gained exactly one member (c) in
// their higher-density set, so their dependency either stays or becomes
// c (Sec. 4.2).
func (t *dpTree) retargetLower(c *Cell, now float64) {
	for _, o := range t.cells {
		if o == c {
			continue
		}
		if higherRanked(o, c, now, t.decay) {
			continue
		}
		d := o.distanceToCell(c)
		if d < o.delta {
			t.link(o, c, d)
		}
	}
}

// subtree returns c and every cell transitively depending on it.
func (t *dpTree) subtree(c *Cell) []*Cell {
	out := []*Cell{c}
	for i := 0; i < len(out); i++ {
		for _, child := range out[i].children {
			out = append(out, child)
		}
	}
	return out
}

// root returns the cell with the highest density (the cell without a
// dependency). Returns nil for an empty tree.
func (t *dpTree) root() *Cell {
	for _, c := range t.cells {
		if c.dep == nil {
			return c
		}
	}
	return nil
}

// peakOf returns the root of the maximal strongly dependent subtree
// containing c for threshold tau: the first ancestor reached by
// following only strong links (δ ≤ τ).
func (t *dpTree) peakOf(c *Cell, tau float64) *Cell {
	cur := c
	for cur.dep != nil && cur.delta <= tau {
		cur = cur.dep
	}
	return cur
}

// msdSubtrees partitions the active cells into maximal strongly
// dependent subtrees for the given τ, returning a map from peak cell to
// its member cells (peak included).
func (t *dpTree) msdSubtrees(tau float64) map[*Cell][]*Cell {
	peaks := make(map[*Cell][]*Cell)
	memo := make(map[int64]*Cell, len(t.cells))
	var findPeak func(c *Cell) *Cell
	findPeak = func(c *Cell) *Cell {
		if p, ok := memo[c.id]; ok {
			return p
		}
		var p *Cell
		if c.dep == nil || c.delta > tau {
			p = c
		} else {
			p = findPeak(c.dep)
		}
		memo[c.id] = p
		return p
	}
	for _, c := range t.cells {
		p := findPeak(c)
		peaks[p] = append(peaks[p], c)
	}
	return peaks
}

// checkInvariants verifies the structural invariants of the DP-Tree at
// time now. It is used by tests and returns the first violation found
// (empty string when the tree is consistent).
func (t *dpTree) checkInvariants(now float64) string {
	roots := 0
	for _, c := range t.cells {
		if !c.active {
			return "inactive cell present in DP-Tree"
		}
		if c.dep == nil {
			roots++
			if !math.IsInf(c.delta, 1) {
				return "root cell has a finite dependent distance"
			}
			continue
		}
		if _, ok := t.cells[c.dep.id]; !ok {
			return "cell depends on a cell outside the DP-Tree"
		}
		if !higherRanked(c.dep, c, now, t.decay) {
			return "cell depends on a cell that does not outrank it"
		}
		if c.dep.children[c.id] != c {
			return "dependency's children index is missing the cell"
		}
		if c.delta < 0 || math.IsNaN(c.delta) {
			return "negative or NaN dependent distance"
		}
	}
	if len(t.cells) > 0 && roots != 1 {
		return "DP-Tree does not have exactly one root"
	}
	// Acyclicity: walking up from any cell must terminate.
	for _, c := range t.cells {
		seen := map[int64]bool{}
		for cur := c; cur != nil; cur = cur.dep {
			if seen[cur.id] {
				return "dependency cycle detected"
			}
			seen[cur.id] = true
		}
	}
	return ""
}
