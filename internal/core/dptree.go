package core

import (
	"math"

	"github.com/densitymountain/edmstream/internal/index"
	"github.com/densitymountain/edmstream/internal/stream"
)

// dpTree holds the active cluster-cells and the dependency links
// between them (Sec. 2.2). Each active cell points at its nearest
// active cell with higher density; the cell with the globally highest
// density is the root and has no dependency. Clusters are the maximal
// strongly dependent subtrees obtained by cutting every link longer
// than τ (Def. 2).
type dpTree struct {
	// list holds the active cells in a slice for cache-friendly,
	// deterministic iteration on the per-point hot path (dependency
	// updates after an absorption). Membership is tracked by the cells'
	// active flag; there is no separate map.
	list  []*Cell
	decay stream.Decay
	// accel, when non-nil, is the stream's grid seed index (shared
	// with EDMStream); dependency searches then expand bucket shells
	// outward instead of scanning every active cell. It indexes all
	// cells — active and reservoir — so searches filter by membership
	// in the tree.
	accel index.SeedIndex
	// slab resolves index candidates (cell IDs) to cells without a map
	// lookup. It is the engine's cell slab, shared at construction.
	slab *cellSlab
	// byDensity buckets the active cells by their decay-normalized
	// log-density key (floor(logNorm/densBucketWidth)), so the density
	// filter of Theorem 1 can enumerate just the cells inside an
	// absorption's density band instead of scanning every active cell.
	byDensity map[int64][]*Cell

	// higherPred is the reusable NearestWhere predicate of the indexed
	// dependency search ("active, not the target, outranks the
	// target"); predCell/predNow parameterize it per call so the hot
	// path does not allocate a closure.
	higherPred func(id int64) bool
	predCell   *Cell
	predNow    float64

	// Incremental MSD-subtree extraction state (see extract.go): dirty
	// lists the cells whose dependency link changed since the last
	// extraction, clusters the live partition (sorted by peak ID when
	// clustersSorted), epoch stamps extraction passes, extractTau is
	// the τ the cached partition was built with, and partChanged
	// records that membership may differ from the partition last handed
	// to the evolution tracker. walk and clusterPool are reused scratch.
	dirty          []*Cell
	clusters       []*msdCluster
	clustersSorted bool
	clusterPool    []*msdCluster
	walk           []*Cell
	epoch          uint64
	extractTau     float64
	extractValid   bool
	partChanged    bool
}

// densBucketWidth is the log-density width of one density band bucket.
// An absorption's band is ln(1 + 1/ρ) wide, so established cells span
// a bucket or two while brand-new cells (ρ ≈ 1) span three.
const densBucketWidth = 0.25

func newDPTree(d stream.Decay) *dpTree {
	t := &dpTree{byDensity: make(map[int64][]*Cell), decay: d}
	t.higherPred = func(id int64) bool {
		o := t.slab.get(id)
		return o != nil && o.active && o != t.predCell && t.outranks(o, t.predCell, t.predNow)
	}
	return t
}

// densBucketOf returns the density bucket for a log-density key.
func densBucketOf(logNorm float64) int64 {
	return int64(math.Floor(logNorm / densBucketWidth))
}

// densInsert adds an active cell to the density band index.
func (t *dpTree) densInsert(c *Cell) {
	b := densBucketOf(c.logNorm)
	c.densBucket = b
	c.densIdx = len(t.byDensity[b])
	t.byDensity[b] = append(t.byDensity[b], c)
}

// densRemove takes an active cell out of the density band index
// (O(1) swap-remove).
func (t *dpTree) densRemove(c *Cell) {
	bucket := t.byDensity[c.densBucket]
	last := len(bucket) - 1
	bucket[c.densIdx] = bucket[last]
	bucket[c.densIdx].densIdx = c.densIdx
	bucket = bucket[:last]
	if len(bucket) == 0 {
		delete(t.byDensity, c.densBucket)
	} else {
		t.byDensity[c.densBucket] = bucket
	}
}

// rebucket moves an active cell to its current density bucket after
// its logNorm key changed (it absorbed a point).
func (t *dpTree) rebucket(c *Cell) {
	if densBucketOf(c.logNorm) == c.densBucket {
		return
	}
	t.densRemove(c)
	t.densInsert(c)
}

// size returns the number of active cells.
func (t *dpTree) size() int { return len(t.list) }

// insert adds a cell to the tree without wiring dependencies; callers
// are responsible for calling computeDependency and retargetLower.
func (t *dpTree) insert(c *Cell) {
	c.active = true
	c.treeIdx = len(t.list)
	t.list = append(t.list, c)
	t.densInsert(c)
	// A promoted cell has no cached peak yet; the next extraction
	// assigns it (and whatever subtree forms beneath it).
	t.markDirty(c)
}

// remove detaches the cell from the tree: it is unlinked from its
// dependency, its children lose their dependency (the caller decides
// what happens to them), and it is marked inactive.
func (t *dpTree) remove(c *Cell) {
	t.unlink(c)
	for i, child := range c.children {
		child.dep = nil
		child.delta = math.Inf(1)
		// Each child becomes a root; its subtree's peaks must be
		// recomputed at the next extraction.
		t.markDirty(child)
		c.children[i] = nil
	}
	c.children = c.children[:0]
	c.active = false
	last := len(t.list) - 1
	t.list[c.treeIdx] = t.list[last]
	t.list[c.treeIdx].treeIdx = c.treeIdx
	t.list = t.list[:last]
	t.densRemove(c)
	t.dropMember(c)
}

// link sets c's dependency to dep at distance delta, maintaining the
// children index and the extraction dirty set.
func (t *dpTree) link(c, dep *Cell, delta float64) {
	if c.dep == dep {
		// Same dependency: the subtree's peaks only move if the link's
		// strongness (δ ≤ τ) flips relative to the τ the cached
		// partition was built with. (If the next refresh changes τ, the
		// whole partition is rebuilt regardless of marks.)
		if t.extractValid && (c.delta <= t.extractTau) != (delta <= t.extractTau) {
			t.markDirty(c)
		}
		c.delta = delta
		return
	}
	t.unlink(c)
	c.dep = dep
	c.delta = delta
	if dep != nil {
		c.childIdx = len(dep.children)
		dep.children = append(dep.children, c)
	}
	t.markDirty(c)
}

// unlink clears c's dependency (O(1) swap-remove from the children
// slice).
func (t *dpTree) unlink(c *Cell) {
	if dep := c.dep; dep != nil {
		last := len(dep.children) - 1
		dep.children[c.childIdx] = dep.children[last]
		dep.children[c.childIdx].childIdx = c.childIdx
		dep.children[last] = nil
		dep.children = dep.children[:last]
		t.markDirty(c)
	}
	c.dep = nil
	c.delta = math.Inf(1)
}

// outranks reports whether cell a outranks cell b in density at time
// now, like higherRanked, but first tries to decide from the cells'
// decay-normalized log-density keys: densities at a common time
// compare as their logNorm keys do, so when the keys differ by more
// than the rounding slack no exponentiation is needed. Only
// near-equal keys (including exact density ties, which the cell-ID
// tie-break resolves) fall through to the exact comparison.
func (t *dpTree) outranks(a, b *Cell, now float64) bool {
	if d := a.logNorm - b.logNorm; d > logBandSlack {
		return true
	} else if d < -logBandSlack {
		return false
	}
	return higherRanked(a, b, now, t.decay)
}

// dependencyScanCap is the higher-ranked set size up to which
// computeDependency prefers enumerating the density buckets above the
// cell over expanding grid shells around it: few higher-ranked cells
// means the nearest one may be anywhere spatially (bad for shells) but
// is cheap to find by trying them all.
const dependencyScanCap = 128

// nearestPick accumulates the nearest candidate with the lowest-ID
// tie-break every dependency search in this package must apply, so the
// determinism rule lives in exactly one place.
type nearestPick struct {
	best *Cell
	dist float64
}

func (p *nearestPick) consider(o *Cell, d float64) {
	if math.IsInf(d, 1) {
		// Incomparable seeds (numeric vs token-set) are never a
		// dependency, even when nothing else is admissible.
		return
	}
	if p.best == nil || d < p.dist || (d == p.dist && o.id < p.best.id) {
		p.best, p.dist = o, d
	}
}

// linkPick installs a search result as c's dependency (or makes c a
// root when the search found nothing).
func (t *dpTree) linkPick(c *Cell, p nearestPick) {
	if p.best == nil {
		t.unlink(c)
		return
	}
	t.link(c, p.best, p.dist)
}

// computeDependency finds c's nearest active cell with higher density
// at time now and links it. If no active cell outranks c, c becomes a
// root (no dependency). Distance ties break toward the lowest cell ID
// so the result does not depend on iteration order (or on the index
// backing the search).
func (t *dpTree) computeDependency(c *Cell, now float64) {
	if t.accel != nil {
		t.computeDependencyIndexed(c, now)
		return
	}
	var pick nearestPick
	for _, o := range t.list {
		if o == c || !t.outranks(o, c, now) {
			continue
		}
		pick.consider(o, c.distanceToCell(o))
	}
	t.linkPick(c, pick)
}

// computeDependencyIndexed is computeDependency on gridded streams. It
// picks between two exact strategies: when few active cells outrank c
// (c is near the top of the density order), it simply tries them all
// via the density buckets; otherwise it expands grid shells around c's
// seed, which terminates quickly because higher-ranked cells are
// plentiful.
func (t *dpTree) computeDependencyIndexed(c *Cell, now float64) {
	start := densBucketOf(c.logNorm - logBandSlack)
	higher := 0
	for b, bucket := range t.byDensity {
		if b >= start {
			higher += len(bucket)
		}
	}
	if higher <= dependencyScanCap {
		var pick nearestPick
		for b, bucket := range t.byDensity {
			if b < start {
				continue
			}
			for _, o := range bucket {
				if o == c || !t.outranks(o, c, now) {
					continue
				}
				pick.consider(o, c.distanceToCell(o))
			}
		}
		t.linkPick(c, pick)
		return
	}
	t.predCell, t.predNow = c, now
	id, d, ok := t.accel.NearestWhere(c.seed, t.higherPred)
	t.predCell = nil
	if !ok {
		t.unlink(c)
		return
	}
	t.link(c, t.slab.get(id), d)
}

// retargetLower checks every active cell ranked below c and relinks it
// to c when c is closer than its current dependency. It is the
// complement of computeDependency when a cell enters the tree or rises
// in density: those lower-ranked cells gained exactly one member (c) in
// their higher-density set, so their dependency either stays or becomes
// c (Sec. 4.2).
func (t *dpTree) retargetLower(c *Cell, now float64) {
	for _, o := range t.list {
		if o == c {
			continue
		}
		if t.outranks(o, c, now) {
			continue
		}
		if d, below := o.distanceBelow(c, o.delta); below {
			t.link(o, c, d)
		}
	}
}

// subtree returns c and every cell transitively depending on it.
func (t *dpTree) subtree(c *Cell) []*Cell {
	out := []*Cell{c}
	for i := 0; i < len(out); i++ {
		for _, child := range out[i].children {
			out = append(out, child)
		}
	}
	return out
}

// root returns the cell with the highest density (the cell without a
// dependency). Returns nil for an empty tree.
func (t *dpTree) root() *Cell {
	for _, c := range t.list {
		if c.dep == nil {
			return c
		}
	}
	return nil
}

// peakOf returns the root of the maximal strongly dependent subtree
// containing c for threshold tau: the first ancestor reached by
// following only strong links (δ ≤ τ).
func (t *dpTree) peakOf(c *Cell, tau float64) *Cell {
	cur := c
	for cur.dep != nil && cur.delta <= tau {
		cur = cur.dep
	}
	return cur
}

// msdSubtrees partitions the active cells into maximal strongly
// dependent subtrees for the given τ, returning a map from peak cell to
// its member cells (peak included).
func (t *dpTree) msdSubtrees(tau float64) map[*Cell][]*Cell {
	peaks := make(map[*Cell][]*Cell)
	memo := make(map[int64]*Cell, len(t.list))
	var findPeak func(c *Cell) *Cell
	findPeak = func(c *Cell) *Cell {
		if p, ok := memo[c.id]; ok {
			return p
		}
		var p *Cell
		if c.dep == nil || c.delta > tau {
			p = c
		} else {
			p = findPeak(c.dep)
		}
		memo[c.id] = p
		return p
	}
	for _, c := range t.list {
		p := findPeak(c)
		peaks[p] = append(peaks[p], c)
	}
	return peaks
}

// checkInvariants verifies the structural invariants of the DP-Tree at
// time now. It is used by tests and returns the first violation found
// (empty string when the tree is consistent).
func (t *dpTree) checkInvariants(now float64) string {
	roots := 0
	for _, c := range t.list {
		if !c.active {
			return "inactive cell present in DP-Tree"
		}
		if c.dep == nil {
			roots++
			if !math.IsInf(c.delta, 1) {
				return "root cell has a finite dependent distance"
			}
			continue
		}
		if !c.dep.active {
			return "cell depends on a cell outside the DP-Tree"
		}
		if !higherRanked(c.dep, c, now, t.decay) {
			return "cell depends on a cell that does not outrank it"
		}
		if c.childIdx < 0 || c.childIdx >= len(c.dep.children) || c.dep.children[c.childIdx] != c {
			return "dependency's children index is missing the cell"
		}
		if c.delta < 0 || math.IsNaN(c.delta) {
			return "negative or NaN dependent distance"
		}
	}
	if len(t.list) > 0 && roots == 0 {
		return "DP-Tree has no root"
	}
	// Every root must be maximal: no active cell may outrank it at a
	// finite distance (otherwise computeDependency/retargetLower failed
	// to link it). On a single-metric stream this implies exactly one
	// root; streams mixing numeric and token-set points legitimately
	// hold one root per metric space, since cross-type distances are
	// infinite.
	for _, c := range t.list {
		if c.dep != nil {
			continue
		}
		for _, o := range t.list {
			if o == c || !higherRanked(o, c, now, t.decay) {
				continue
			}
			if !math.IsInf(c.distanceToCell(o), 1) {
				return "root cell has an admissible dependency it is not linked to"
			}
		}
	}
	// Acyclicity: walking up from any cell must terminate.
	for _, c := range t.list {
		seen := map[int64]bool{}
		for cur := c; cur != nil; cur = cur.dep {
			if seen[cur.id] {
				return "dependency cycle detected"
			}
			seen[cur.id] = true
		}
	}
	for i, c := range t.list {
		if c.treeIdx != i {
			return "active cell list index out of sync"
		}
	}
	inBuckets := 0
	for b, bucket := range t.byDensity {
		for i, c := range bucket {
			inBuckets++
			if c.densBucket != b || c.densIdx != i {
				return "density band index out of sync"
			}
			if !c.active {
				return "inactive cell present in density band index"
			}
			if densBucketOf(c.logNorm) != b {
				return "cell filed in the wrong density bucket"
			}
		}
	}
	if inBuckets != len(t.list) {
		return "density band index and active cell list sizes differ"
	}
	return ""
}
