package core

import (
	"math"
	"sort"

	"github.com/densitymountain/edmstream/internal/stream"
)

// This file implements incremental MSD-subtree extraction: instead of
// recomputing the cluster partition from scratch on every refresh, the
// DP-Tree tracks dirtiness at the dependency-link level (relinks,
// promotions, demotions and strongness flips mark only the affected
// subtrees) and keeps a persistent peak/membership structure that a
// refresh brings up to date by reprocessing only the invalidated
// subtrees. On a steady-state stream where few links move between
// refreshes, a refresh touches a handful of cells instead of all of
// them.
//
// The invariants the structure maintains between extractions:
//
//  1. Every active cell belongs to exactly one msdCluster, the one
//     whose peak is the first ancestor reached from the cell by
//     following only strong links (δ ≤ τ), unless the cell's link
//     changed since the last extraction (then it is marked dirty and
//     the next extraction reassigns its whole subtree).
//  2. A cluster's member views (ids, seeds) are immutable once built:
//     membership changes invalidate them and the next build allocates
//     fresh slices, so published snapshots can share them safely.
//  3. partChanged is true whenever the current membership may differ
//     from the partition last handed to the evolution tracker; only
//     then does a refresh re-run the tracker diff.

// msdCluster is one maximal strongly dependent subtree of the DP-Tree
// (Def. 2), maintained incrementally across clustering refreshes.
type msdCluster struct {
	// peak is the subtree's root: the member every other member
	// transitively depends on through strong links.
	peak *Cell
	// members holds the cluster's cells, unordered; each cell's
	// memberIdx is its slot here (O(1) removal).
	members []*Cell
	// ids and seeds are the snapshot-facing member views: member cell
	// IDs sorted ascending, and the matching seed clones, index
	// aligned. They are rebuilt (with fresh backing) after a membership
	// change and shared with published snapshots, so they are never
	// mutated in place once built. When viewsValid is true, members is
	// also sorted by cell ID.
	ids        []int64
	seeds      []stream.Point
	viewsValid bool
	// id is the stable cluster ID assigned by the evolution tracker at
	// the last refresh that ran the tracker diff.
	id int
}

// addMember appends c to the cluster.
func (cl *msdCluster) addMember(c *Cell) {
	c.memberIdx = len(cl.members)
	cl.members = append(cl.members, c)
	cl.viewsValid = false
}

// removeMember deletes c from the cluster (swap-remove).
func (cl *msdCluster) removeMember(c *Cell) {
	last := len(cl.members) - 1
	cl.members[c.memberIdx] = cl.members[last]
	cl.members[c.memberIdx].memberIdx = c.memberIdx
	cl.members[last] = nil
	cl.members = cl.members[:last]
	cl.viewsValid = false
}

// buildViews brings the cluster's snapshot-facing views up to date:
// members are sorted by cell ID and the ids/seeds slices are rebuilt
// with fresh backing (the old ones may be shared with a published
// snapshot). A no-op when nothing changed since the last build.
func (cl *msdCluster) buildViews() {
	if cl.viewsValid {
		return
	}
	// Insertion sort: members leave a rebuild sorted and a refresh
	// perturbs only a few slots, so this beats sort.Slice on the
	// near-sorted small slices it actually sees.
	m := cl.members
	for i := 1; i < len(m); i++ {
		c := m[i]
		j := i - 1
		for j >= 0 && m[j].id > c.id {
			m[j+1] = m[j]
			j--
		}
		m[j+1] = c
	}
	ids := make([]int64, len(m))
	seeds := make([]stream.Point, len(m))
	for i, c := range m {
		c.memberIdx = i
		ids[i] = c.id
		seeds[i] = c.seedClone()
	}
	cl.ids, cl.seeds = ids, seeds
	cl.viewsValid = true
}

// markDirty records that c's dependency link changed since the last
// extraction, scheduling its subtree for peak recomputation.
func (t *dpTree) markDirty(c *Cell) {
	if c.dirtyMark {
		return
	}
	c.dirtyMark = true
	t.dirty = append(t.dirty, c)
}

// dropMember takes a cell out of its cluster (demotion path). The
// cluster object itself is dropped at the next extraction if it
// drains completely.
func (t *dpTree) dropMember(c *Cell) {
	if cl := c.cluster; cl != nil {
		cl.removeMember(c)
		c.cluster = nil
		t.partChanged = true
	}
}

// newCluster registers a fresh cluster led by peak p.
func (t *dpTree) newCluster(p *Cell) *msdCluster {
	var cl *msdCluster
	if n := len(t.clusterPool); n > 0 {
		cl = t.clusterPool[n-1]
		t.clusterPool[n-1] = nil
		t.clusterPool = t.clusterPool[:n-1]
		cl.members = cl.members[:0]
	} else {
		cl = &msdCluster{}
	}
	cl.peak = p
	cl.ids, cl.seeds = nil, nil
	cl.viewsValid = false
	cl.id = 0
	p.leads = cl
	t.clusters = append(t.clusters, cl)
	t.clustersSorted = false
	return cl
}

// truePeak walks c's raw dependency links (never the cached cluster
// assignments) to the root of its maximal strongly dependent subtree
// under the extraction τ.
func (t *dpTree) truePeak(c *Cell) *Cell {
	return t.peakOf(c, t.extractTau)
}

// clusterFor returns the cluster p should lead. When p has no cluster
// yet, it first tries to *rename* p's current cluster instead of
// creating a fresh one: if that cluster's registered peak itself now
// peaks at p, then every member whose links did not change still peaks
// at p too (its unchanged strong chain reaches the old peak, whose
// chain continues to p), so the whole cluster continues under p and
// none of its unmoved members need to be touched. This is the common
// steady-state event — a burst promotes another member to the top of
// an otherwise stable subtree — and without the rename it would read
// as every member leaving one cluster and entering a new one.
func (t *dpTree) clusterFor(p *Cell) *msdCluster {
	if cl := p.leads; cl != nil {
		return cl
	}
	if x := p.cluster; x != nil && t.truePeak(x.peak) == p {
		if x.peak.leads == x {
			x.peak.leads = nil
		}
		x.peak = p
		p.leads = x
		t.clustersSorted = false
		return x
	}
	return t.newCluster(p)
}

// assignPeak moves cell c into the cluster led by p (creating or
// renaming it when necessary) and stamps c as processed for the
// current extraction.
func (t *dpTree) assignPeak(c, p *Cell) {
	c.extractEpoch = t.epoch
	if cl := c.cluster; cl != nil && cl.peak == p {
		return
	}
	target := t.clusterFor(p)
	if c.cluster == target {
		// The rename above re-keyed c's own cluster; c stays put.
		return
	}
	if cl := c.cluster; cl != nil {
		cl.removeMember(c)
	}
	target.addMember(c)
	c.cluster = target
	t.partChanged = true
}

// extractFrom recomputes the peak assignment of c and of every cell in
// c's strongly-dependent subtree. c's true peak is found by walking
// the raw dependency links (never the cached assignments, which may be
// stale), then pushed down through strong links; weak-linked children
// are their own peaks and their subtrees cannot have changed unless
// their own links did, in which case they carry their own dirty mark.
func (t *dpTree) extractFrom(c *Cell, tau float64) {
	p := t.truePeak(c)
	t.assignPeak(c, p)
	stack := append(t.walk[:0], c)
	for len(stack) > 0 {
		y := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, child := range y.children {
			if child.delta <= tau && child.extractEpoch != t.epoch {
				t.assignPeak(child, p)
				stack = append(stack, child)
			}
		}
	}
	t.walk = stack[:0]
}

// extract brings the cluster partition up to date for threshold tau.
// Only subtrees whose links changed since the last extraction are
// reprocessed; a τ change (or the first extraction) invalidates every
// cached peak and reprocesses the whole tree. It returns whether
// membership may differ from the partition last handed to the
// evolution tracker (the caller resets the flag after deciding).
func (t *dpTree) extract(tau float64) bool {
	full := !t.extractValid || tau != t.extractTau
	// The extraction τ is set up front: truePeak walks (and the rename
	// check inside clusterFor) must judge strongness under the τ this
	// extraction is building, not the previous one.
	t.extractTau = tau
	if full {
		t.epoch++
		for _, c := range t.list {
			if c.extractEpoch != t.epoch {
				t.extractFrom(c, tau)
			}
		}
	} else if len(t.dirty) > 0 {
		t.epoch++
		for _, c := range t.dirty {
			if c.active && c.extractEpoch != t.epoch {
				t.extractFrom(c, tau)
			}
		}
	}
	for _, c := range t.dirty {
		c.dirtyMark = false
	}
	t.dirty = t.dirty[:0]

	// Drop drained clusters (their peak was demoted or absorbed into
	// another mountain and every member has been reassigned).
	kept := t.clusters[:0]
	for _, cl := range t.clusters {
		if len(cl.members) == 0 {
			if cl.peak.leads == cl {
				cl.peak.leads = nil
			}
			cl.peak = nil
			cl.ids, cl.seeds = nil, nil
			t.clusterPool = append(t.clusterPool, cl)
			t.partChanged = true
			continue
		}
		kept = append(kept, cl)
	}
	for i := len(kept); i < len(t.clusters); i++ {
		t.clusters[i] = nil
	}
	t.clusters = kept
	if !t.clustersSorted {
		sort.Slice(t.clusters, func(a, b int) bool { return t.clusters[a].peak.id < t.clusters[b].peak.id })
		t.clustersSorted = true
	}
	t.extractValid = true
	return t.partChanged
}

// checkExtraction verifies the incremental partition against a from-
// scratch msdSubtrees computation (tests only). It returns the first
// inconsistency found, or "".
func (t *dpTree) checkExtraction() string {
	if !t.extractValid {
		return ""
	}
	if len(t.dirty) > 0 {
		// Pending dirty subtrees: the cached partition is allowed to be
		// stale until the next extraction.
		return ""
	}
	want := t.msdSubtrees(t.extractTau)
	if len(want) != len(t.clusters) {
		return "incremental cluster count differs from msdSubtrees"
	}
	for _, cl := range t.clusters {
		members, ok := want[cl.peak]
		if !ok {
			return "incremental peak is not an msdSubtrees peak"
		}
		if len(members) != len(cl.members) {
			return "incremental member count differs from msdSubtrees"
		}
		for _, c := range cl.members {
			if c.cluster != cl {
				return "member's cluster pointer does not match its cluster"
			}
		}
		seen := make(map[int64]bool, len(members))
		for _, c := range members {
			seen[c.id] = true
		}
		for _, c := range cl.members {
			if !seen[c.id] {
				return "incremental membership differs from msdSubtrees"
			}
		}
	}
	for i, cl := range t.clusters {
		if cl.peak.leads != cl {
			return "peak's leads pointer out of sync"
		}
		if i > 0 && t.clusters[i-1].peak.id >= cl.peak.id {
			return "cluster list not sorted by peak ID"
		}
	}
	return ""
}

// clusterBookkeepingInvariants checks the structural consistency of
// the incremental membership bookkeeping (valid at any time, including
// between extractions with dirty subtrees pending).
func (t *dpTree) clusterBookkeepingInvariants() string {
	assigned := 0
	for _, cl := range t.clusters {
		for i, c := range cl.members {
			if c.cluster != cl || c.memberIdx != i {
				return "cluster member bookkeeping out of sync"
			}
			if !c.active {
				return "inactive cell retained in a cluster"
			}
			assigned++
		}
	}
	for _, c := range t.list {
		if c.cluster == nil && t.extractValid && !c.dirtyMark {
			return "active cell with no cluster and no dirty mark"
		}
		if c.leads != nil && c.leads.peak != c {
			return "cell leads a cluster with a different peak"
		}
	}
	if t.extractValid && assigned > len(t.list) {
		return "more cluster members than active cells"
	}
	if math.IsNaN(t.extractTau) {
		return "NaN extraction tau"
	}
	return ""
}
