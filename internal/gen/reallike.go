package gen

import (
	"fmt"
	"math/rand"

	"github.com/densitymountain/edmstream/internal/stream"
)

// RealLikeConfig parameterizes the simulators that stand in for the
// paper's real datasets (KDDCUP99, CoverType, PAMAP2). Each simulator
// matches the real dataset's dimensionality, number of classes and
// arrival character; N defaults to the real cardinality but is usually
// scaled down for tests and benches (the curves in Sec. 6 are reported
// against stream length, so any prefix is meaningful).
type RealLikeConfig struct {
	// N is the number of points. Zero selects the real dataset's
	// cardinality (see KDDLike, CoverTypeLike, PAMAPLike).
	N int
	// Seed seeds the deterministic random generator.
	Seed int64
	// NoiseFraction is the fraction of uniform noise (default 0.01).
	NoiseFraction float64
}

func (c *RealLikeConfig) defaults(realN int) {
	if c.N <= 0 {
		c.N = realN
	}
	if c.NoiseFraction <= 0 {
		c.NoiseFraction = 0.01
	}
}

// KDDLike simulates the KDDCUP99 network-intrusion stream of Table 2:
// 494,021 points, 34 numeric dimensions, 23 classes with extremely
// skewed sizes (a few attack types dominate), arriving in bursts (an
// attack produces a run of points of the same class). Those are the
// properties that drive both the response-time and the CMM curves of
// Figs. 9, 10, 11 and 13.
func KDDLike(cfg RealLikeConfig) (Dataset, error) {
	cfg.defaults(494021)
	const (
		dim     = 34
		classes = 23
	)
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := randomCenters(rng, classes, dim, 0, 1000, 150)
	weights := zipfWeights(classes, 1.6)
	sigma := 12.0

	points := make([]stream.Point, 0, cfg.N)
	// Bursty arrival: draw a class, emit a geometric-length run of
	// points from it, repeat.
	for len(points) < cfg.N {
		class := sampleCategorical(rng, weights)
		// Dominant classes produce longer bursts, as DoS floods do in
		// the real trace.
		burst := 1 + rng.Intn(20) + int(weights[class]*200)
		for b := 0; b < burst && len(points) < cfg.N; b++ {
			if rng.Float64() < cfg.NoiseFraction {
				points = append(points, stream.Point{
					Vector: uniformPoint(rng, dim, 0, 1000),
					Label:  stream.NoLabel,
				})
				continue
			}
			points = append(points, stream.Point{
				Vector: gaussianPoint(rng, centers[class], sigma),
				Label:  class,
			})
		}
	}

	return Dataset{
		Name:            "KDDCUP99-like",
		Points:          points,
		Dim:             dim,
		NumClasses:      classes,
		SuggestedRadius: radiusFromData(points, 100),
	}, nil
}

// radiusFromData applies the paper's rule for choosing the cluster-cell
// radius (the ~1% quantile of pairwise distances, Sec. 6.1/6.7) to the
// generated stream, falling back to the given nominal value if the
// sample is degenerate. Computing it from the data keeps the radius
// consistent with the simulator's geometry, which is what the paper's
// Table 2 radii are for the real datasets.
func radiusFromData(points []stream.Point, fallback float64) float64 {
	r, err := SuggestRadius(points, 0.01, 400)
	if err != nil || r <= 0 {
		return fallback
	}
	return r
}

// CoverTypeLike simulates the CoverType stream of Table 2: 581,012
// points, 54 dimensions, 7 classes, with overlapping classes and a
// gradual drift of class prevalence over the stream (cover types change
// as the survey moves across terrain).
func CoverTypeLike(cfg RealLikeConfig) (Dataset, error) {
	cfg.defaults(581012)
	const (
		dim     = 54
		classes = 7
	)
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := randomCenters(rng, classes, dim, 0, 3000, 900)
	sigma := 80.0

	points := make([]stream.Point, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if rng.Float64() < cfg.NoiseFraction {
			points = append(points, stream.Point{
				Vector: uniformPoint(rng, dim, 0, 3000),
				Label:  stream.NoLabel,
			})
			continue
		}
		// Gradual drift of class prevalence: the preferred class
		// rotates slowly over the stream, with the others sharing the
		// remaining probability.
		frac := float64(i) / float64(cfg.N)
		preferred := int(frac*float64(classes)) % classes
		var class int
		if rng.Float64() < 0.5 {
			class = preferred
		} else {
			class = rng.Intn(classes)
		}
		points = append(points, stream.Point{
			Vector: gaussianPoint(rng, centers[class], sigma),
			Label:  class,
		})
	}

	return Dataset{
		Name:            "CoverType-like",
		Points:          points,
		Dim:             dim,
		NumClasses:      classes,
		SuggestedRadius: radiusFromData(points, 250),
	}, nil
}

// PAMAPLike simulates the PAMAP2 physical-activity stream of Table 2:
// 447,000 points, 51 dimensions, 13 classes organized as long activity
// segments (a subject performs one activity for an extended period, so
// points of one class arrive consecutively). The segment structure is
// what produces cluster emergence and disappearance over the stream.
func PAMAPLike(cfg RealLikeConfig) (Dataset, error) {
	cfg.defaults(447000)
	const (
		dim     = 51
		classes = 13
	)
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := randomCenters(rng, classes, dim, 0, 200, 60)
	sigma := 4.0

	points := make([]stream.Point, 0, cfg.N)
	// Activity segments: each segment is 2%-6% of the stream from one
	// class.
	for len(points) < cfg.N {
		class := rng.Intn(classes)
		segLen := cfg.N/50 + rng.Intn(cfg.N/25+1)
		if segLen < 1 {
			segLen = 1
		}
		for s := 0; s < segLen && len(points) < cfg.N; s++ {
			if rng.Float64() < cfg.NoiseFraction {
				points = append(points, stream.Point{
					Vector: uniformPoint(rng, dim, 0, 200),
					Label:  stream.NoLabel,
				})
				continue
			}
			points = append(points, stream.Point{
				Vector: gaussianPoint(rng, centers[class], sigma),
				Label:  class,
			})
		}
	}

	return Dataset{
		Name:            "PAMAP2-like",
		Points:          points,
		Dim:             dim,
		NumClasses:      classes,
		SuggestedRadius: radiusFromData(points, 5),
	}, nil
}

// ByName builds one of the named datasets with the given number of
// points (0 keeps each generator's default size) and seed. Supported
// names: "sds", "hds-<dim>", "kdd", "covertype", "pamap2".
func ByName(name string, n int, seed int64) (Dataset, error) {
	switch name {
	case "sds", "SDS":
		return SDS(SDSConfig{N: n, Seed: seed})
	case "kdd", "kddcup99", "KDDCUP99":
		return KDDLike(RealLikeConfig{N: n, Seed: seed})
	case "covertype", "CoverType":
		return CoverTypeLike(RealLikeConfig{N: n, Seed: seed})
	case "pamap2", "PAMAP2", "pamap":
		return PAMAPLike(RealLikeConfig{N: n, Seed: seed})
	default:
		var dim int
		if _, err := fmt.Sscanf(name, "hds-%d", &dim); err == nil && dim > 0 {
			return HDS(HDSConfig{N: n, Dim: dim, Seed: seed})
		}
		return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
	}
}
