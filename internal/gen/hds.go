package gen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/densitymountain/edmstream/internal/stream"
)

// HDSConfig parameterizes the high-dimensional synthetic stream of
// Sec. 6.3.4 (Fig. 12). The paper's HDS has 100,000 points, 20 clusters
// and dimensionalities 10, 30, 100, 300 and 1000.
type HDSConfig struct {
	// N is the number of points (paper: 100,000).
	N int
	// Dim is the dimensionality (paper: 10..1000).
	Dim int
	// Clusters is the number of Gaussian clusters (paper: 20).
	Clusters int
	// Seed seeds the deterministic random generator.
	Seed int64
	// NoiseFraction is the fraction of uniform noise points
	// (default 0.05).
	NoiseFraction float64
	// DriftPerPoint is how far each cluster center drifts per emitted
	// point, as a fraction of the space size (default 0, i.e. static
	// clusters, which is all Fig. 12 needs).
	DriftPerPoint float64
}

func (c *HDSConfig) defaults() {
	if c.N <= 0 {
		c.N = 100000
	}
	if c.Dim <= 0 {
		c.Dim = 10
	}
	if c.Clusters <= 0 {
		c.Clusters = 20
	}
	if c.NoiseFraction < 0 {
		c.NoiseFraction = 0
	} else if c.NoiseFraction == 0 {
		c.NoiseFraction = 0.05
	}
}

// HDS generates a d-dimensional Gaussian-mixture stream with the given
// configuration. Cluster centers are placed in [0,100]^d with a minimum
// separation that scales with sqrt(d) so that clusters remain separable
// at every dimensionality (otherwise high-dimensional runs would
// degenerate into a single blob and stop exercising the clustering code
// path the figure is about).
func HDS(cfg HDSConfig) (Dataset, error) {
	cfg.defaults()
	if cfg.Clusters > cfg.N {
		return Dataset{}, fmt.Errorf("gen: HDS with %d clusters needs at least as many points, got %d", cfg.Clusters, cfg.N)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	const lo, hi = 0.0, 100.0
	minSep := 25 * math.Sqrt(float64(cfg.Dim))
	centers := randomCenters(rng, cfg.Clusters, cfg.Dim, lo, hi, minSep)
	sigma := 2.0

	points := make([]stream.Point, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if rng.Float64() < cfg.NoiseFraction {
			points = append(points, stream.Point{
				Vector: uniformPoint(rng, cfg.Dim, lo, hi),
				Label:  stream.NoLabel,
			})
			continue
		}
		k := rng.Intn(cfg.Clusters)
		if cfg.DriftPerPoint > 0 {
			for d := range centers[k] {
				centers[k][d] += (rng.Float64() - 0.5) * cfg.DriftPerPoint * (hi - lo)
			}
		}
		points = append(points, stream.Point{
			Vector: gaussianPoint(rng, centers[k], sigma),
			Label:  k,
		})
	}

	// The paper's Table 2 lists r = 60..70 for HDS depending on the
	// dimensionality, which is what the ~1% pairwise-distance quantile
	// rule yields for its generator; apply the same rule to ours, with
	// a sqrt(d)-scaled fallback for degenerate samples.
	fallback := 20 + 16*math.Log10(float64(cfg.Dim))
	r, err := SuggestRadius(points, 0.01, 400)
	if err != nil || r <= 0 {
		r = fallback
	}

	return Dataset{
		Name:            fmt.Sprintf("HDS-%d", cfg.Dim),
		Points:          points,
		Dim:             cfg.Dim,
		NumClasses:      cfg.Clusters,
		SuggestedRadius: r,
	}, nil
}
