package gen

import (
	"fmt"
	"math/rand"

	"github.com/densitymountain/edmstream/internal/stream"
)

// SDSEventKind names the cluster evolution events scripted into the
// SDS stream (they mirror the activities visible in Fig. 6/7).
type SDSEventKind string

// The evolution activities scripted into SDS.
const (
	SDSMerge     SDSEventKind = "merge"
	SDSEmerge    SDSEventKind = "emerge"
	SDSDisappear SDSEventKind = "disappear"
	SDSSplit     SDSEventKind = "split"
)

// SDSEvent records one scripted evolution activity and when it happens,
// expressed as a fraction of the stream (0 = first point, 1 = last).
// At the paper's 1,000 pt/s over 20,000 points, fraction f corresponds
// to wall-clock time 20·f seconds.
type SDSEvent struct {
	Kind     SDSEventKind
	Fraction float64
}

// SDSConfig parameterizes the SDS generator.
type SDSConfig struct {
	// N is the total number of points (the paper uses 20,000).
	N int
	// Seed seeds the deterministic random generator.
	Seed int64
	// NoiseFraction is the fraction of uniform background noise points
	// (default 0.02).
	NoiseFraction float64
	// Sigma is the standard deviation of each Gaussian cluster
	// (default 0.5).
	Sigma float64
}

func (c *SDSConfig) defaults() {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.NoiseFraction <= 0 {
		c.NoiseFraction = 0.02
	}
	if c.Sigma <= 0 {
		c.Sigma = 0.5
	}
}

// SDSEvents returns the scripted evolution schedule of the SDS stream,
// mirroring Fig. 7: two clusters approach and merge at 45% of the
// stream (t≈9 s at 1 k/s), a new cluster emerges at 60% (t≈12 s), the
// old cluster disappears at 70% (t≈14 s), and the new cluster splits in
// two at 70% as well.
func SDSEvents() []SDSEvent {
	return []SDSEvent{
		{Kind: SDSMerge, Fraction: 0.45},
		{Kind: SDSEmerge, Fraction: 0.60},
		{Kind: SDSDisappear, Fraction: 0.70},
		{Kind: SDSSplit, Fraction: 0.70},
	}
}

// SDS generates the 2-D synthetic stream of Sec. 6.2.1. The stream is
// scripted so that, replayed at a constant rate, its clusters reproduce
// the evolution activities of Fig. 6/7:
//
//	phase 1 [0%,45%):  clusters A and B move toward each other
//	phase 2 [45%,60%): A and B have merged into one cluster M
//	phase 3 [60%,70%): a new cluster C emerges on the right while M
//	                   fades (receives ever fewer points)
//	phase 4 [70%,100%]: M has disappeared and C splits into C1/C2 that
//	                   drift apart
//
// Ground-truth labels: 0 = cluster A / merged M, 1 = cluster B (until
// the merge, then label 0), 2 = cluster C / C1, 3 = C2, -1 = noise.
func SDS(cfg SDSConfig) (Dataset, error) {
	cfg.defaults()
	if cfg.N < 100 {
		return Dataset{}, fmt.Errorf("gen: SDS needs at least 100 points, got %d", cfg.N)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	points := make([]stream.Point, 0, cfg.N)

	for i := 0; i < cfg.N; i++ {
		frac := float64(i) / float64(cfg.N)
		if rng.Float64() < cfg.NoiseFraction {
			points = append(points, stream.Point{
				Vector: uniformPoint(rng, 2, -10, 10),
				Label:  stream.NoLabel,
			})
			continue
		}
		var center []float64
		var label int
		switch {
		case frac < 0.45:
			// Two clusters approaching each other: A from (-6,0) to
			// (-0.8,0), B from (6,0) to (0.8,0).
			prog := frac / 0.45
			if rng.Intn(2) == 0 {
				center = []float64{-6 + 5.2*prog, 0}
				label = 0
			} else {
				center = []float64{6 - 5.2*prog, 0}
				label = 1
			}
		case frac < 0.60:
			// Merged cluster M sits at the origin.
			center = []float64{0, 0}
			label = 0
		case frac < 0.70:
			// Cluster C emerges at (8,0); M fades: the share of points
			// it receives decreases linearly to zero.
			prog := (frac - 0.60) / 0.10
			if rng.Float64() < 1-prog {
				center = []float64{0, 0}
				label = 0
			} else {
				center = []float64{8, 0}
				label = 2
			}
		default:
			// M is gone; C has split into C1 moving up and C2 moving
			// down.
			prog := (frac - 0.70) / 0.30
			if rng.Intn(2) == 0 {
				center = []float64{8, 1 + 4*prog}
				label = 2
			} else {
				center = []float64{8, -1 - 4*prog}
				label = 3
			}
		}
		points = append(points, stream.Point{
			Vector: gaussianPoint(rng, center, cfg.Sigma),
			Label:  label,
		})
	}

	return Dataset{
		Name:            "SDS",
		Points:          points,
		Dim:             2,
		NumClasses:      4,
		SuggestedRadius: 0.3,
	}, nil
}
