package gen

import "math/rand"

// newTestRand returns a deterministic RNG for use in property tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1234)) }
