package gen

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/densitymountain/edmstream/internal/stream"
)

func validateDataset(t *testing.T, d Dataset, wantN, wantDim, wantClasses int) {
	t.Helper()
	if d.Len() != wantN {
		t.Errorf("%s: Len = %d, want %d", d.Name, d.Len(), wantN)
	}
	if d.Dim != wantDim {
		t.Errorf("%s: Dim = %d, want %d", d.Name, d.Dim, wantDim)
	}
	if d.NumClasses != wantClasses {
		t.Errorf("%s: NumClasses = %d, want %d", d.Name, d.NumClasses, wantClasses)
	}
	if d.SuggestedRadius <= 0 {
		t.Errorf("%s: SuggestedRadius = %v, want positive", d.Name, d.SuggestedRadius)
	}
	for i, p := range d.Points {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: point %d invalid: %v", d.Name, i, err)
		}
		if p.Dim() != wantDim {
			t.Fatalf("%s: point %d has dim %d, want %d", d.Name, i, p.Dim(), wantDim)
		}
		if p.Label != stream.NoLabel && (p.Label < 0 || p.Label >= wantClasses) {
			t.Fatalf("%s: point %d has label %d outside [0,%d)", d.Name, i, p.Label, wantClasses)
		}
	}
}

func TestSDS(t *testing.T) {
	d, err := SDS(SDSConfig{N: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	validateDataset(t, d, 2000, 2, 4)

	// Phase structure: early points must include labels 0 and 1 only
	// (plus noise); late points labels 2 and 3 only (plus noise).
	early := map[int]int{}
	late := map[int]int{}
	for i, p := range d.Points {
		frac := float64(i) / float64(len(d.Points))
		if frac < 0.40 {
			early[p.Label]++
		}
		if frac > 0.75 {
			late[p.Label]++
		}
	}
	if early[0] == 0 || early[1] == 0 {
		t.Errorf("early phase missing cluster A or B: %v", early)
	}
	if early[2] != 0 || early[3] != 0 {
		t.Errorf("early phase contains late clusters: %v", early)
	}
	if late[2] == 0 || late[3] == 0 {
		t.Errorf("late phase missing split clusters C1/C2: %v", late)
	}
	if late[0] != 0 || late[1] != 0 {
		t.Errorf("late phase still contains old clusters: %v", late)
	}
}

func TestSDSDeterminism(t *testing.T) {
	a, err := SDS(SDSConfig{N: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SDS(SDSConfig{N: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].Label != b.Points[i].Label {
			t.Fatalf("same seed produced different labels at %d", i)
		}
		for j := range a.Points[i].Vector {
			if a.Points[i].Vector[j] != b.Points[i].Vector[j] {
				t.Fatalf("same seed produced different vectors at %d", i)
			}
		}
	}
	c, err := SDS(SDSConfig{N: 1000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Points {
		if a.Points[i].Vector[0] != c.Points[i].Vector[0] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

func TestSDSTooSmall(t *testing.T) {
	if _, err := SDS(SDSConfig{N: 10, Seed: 1}); err == nil {
		t.Error("expected error for tiny SDS")
	}
}

func TestSDSEventsSchedule(t *testing.T) {
	events := SDSEvents()
	if len(events) != 4 {
		t.Fatalf("SDSEvents returned %d events, want 4", len(events))
	}
	kinds := map[SDSEventKind]bool{}
	for _, e := range events {
		if e.Fraction <= 0 || e.Fraction >= 1 {
			t.Errorf("event %v has fraction %v outside (0,1)", e.Kind, e.Fraction)
		}
		kinds[e.Kind] = true
	}
	for _, k := range []SDSEventKind{SDSMerge, SDSEmerge, SDSDisappear, SDSSplit} {
		if !kinds[k] {
			t.Errorf("missing scripted event %v", k)
		}
	}
}

func TestHDS(t *testing.T) {
	for _, dim := range []int{10, 30, 100} {
		d, err := HDS(HDSConfig{N: 1500, Dim: dim, Clusters: 20, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		validateDataset(t, d, 1500, dim, 20)
	}
}

func TestHDSClusterSeparation(t *testing.T) {
	// Points of the same class must on average be much closer than
	// points of different classes, otherwise the stream stops being a
	// clustering benchmark.
	d, err := HDS(HDSConfig{N: 2000, Dim: 10, Clusters: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var intraN, interN int
	pts := d.Points
	for i := 0; i < 300; i++ {
		for j := i + 1; j < 300; j++ {
			if pts[i].Label == stream.NoLabel || pts[j].Label == stream.NoLabel {
				continue
			}
			dd := pts[i].Distance(pts[j])
			if pts[i].Label == pts[j].Label {
				intra += dd
				intraN++
			} else {
				inter += dd
				interN++
			}
		}
	}
	if intraN == 0 || interN == 0 {
		t.Skip("sample too small to compare intra/inter distances")
	}
	if intra/float64(intraN)*3 > inter/float64(interN) {
		t.Errorf("clusters not separated: intra avg %v, inter avg %v", intra/float64(intraN), inter/float64(interN))
	}
}

func TestHDSErrors(t *testing.T) {
	if _, err := HDS(HDSConfig{N: 5, Dim: 10, Clusters: 20, Seed: 1}); err == nil {
		t.Error("expected error when clusters exceed points")
	}
}

func TestRealLikeGenerators(t *testing.T) {
	tests := []struct {
		name    string
		gen     func(RealLikeConfig) (Dataset, error)
		dim     int
		classes int
	}{
		{"kdd", KDDLike, 34, 23},
		{"covertype", CoverTypeLike, 54, 7},
		{"pamap2", PAMAPLike, 51, 13},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := tt.gen(RealLikeConfig{N: 3000, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			validateDataset(t, d, 3000, tt.dim, tt.classes)
			// All simulators must cover more than one class in a
			// reasonably sized prefix.
			seen := map[int]bool{}
			for _, p := range d.Points {
				if p.Label != stream.NoLabel {
					seen[p.Label] = true
				}
			}
			if len(seen) < 3 {
				t.Errorf("%s covers only %d classes", tt.name, len(seen))
			}
		})
	}
}

func TestKDDLikeSkewAndBurstiness(t *testing.T) {
	d, err := KDDLike(RealLikeConfig{N: 20000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	runs := 0
	prev := -2
	for _, p := range d.Points {
		if p.Label != stream.NoLabel {
			counts[p.Label]++
		}
		if p.Label != prev {
			runs++
			prev = p.Label
		}
	}
	// Skew: the largest class must dominate the smallest observed class.
	max, min := 0, 1<<30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 10*min {
		t.Errorf("class sizes not skewed enough: max %d, min %d", max, min)
	}
	// Burstiness: far fewer label runs than points.
	if runs > len(d.Points)/3 {
		t.Errorf("arrival not bursty: %d runs over %d points", runs, len(d.Points))
	}
}

func TestPAMAPLikeSegments(t *testing.T) {
	d, err := PAMAPLike(RealLikeConfig{N: 10000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Activity segments: long same-label runs dominate.
	runs := 0
	prev := -2
	for _, p := range d.Points {
		if p.Label == stream.NoLabel {
			continue
		}
		if p.Label != prev {
			runs++
			prev = p.Label
		}
	}
	if runs > 200 {
		t.Errorf("PAMAP-like stream has %d segments over 10000 points; expected long activity segments", runs)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sds", "kdd", "covertype", "pamap2", "hds-10", "hds-30"} {
		d, err := ByName(name, 1200, 1)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if d.Len() != 1200 {
			t.Errorf("ByName(%q): Len = %d, want 1200", name, d.Len())
		}
	}
	if _, err := ByName("nope", 100, 1); err == nil {
		t.Error("ByName(unknown): expected error")
	}
	if _, err := ByName("hds-0", 100, 1); err == nil {
		t.Error("ByName(hds-0): expected error")
	}
}

func TestSuggestRadius(t *testing.T) {
	d, err := SDS(SDSConfig{N: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := SuggestRadius(d.Points, 0.005, 300)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SuggestRadius(d.Points, 0.02, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r1 <= 0 || r2 <= 0 {
		t.Fatalf("non-positive radii: %v, %v", r1, r2)
	}
	if r1 > r2 {
		t.Errorf("radius at 0.5%% quantile (%v) should not exceed radius at 2%% quantile (%v)", r1, r2)
	}
	if _, err := SuggestRadius(d.Points[:1], 0.01, 0); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := SuggestRadius(d.Points, 2, 0); err == nil {
		t.Error("expected error for quantile > 1")
	}
}

func TestBounds(t *testing.T) {
	pts := []stream.Point{
		{Vector: []float64{1, 5}},
		{Vector: []float64{-3, 7}},
		{Vector: []float64{2, -1}},
	}
	lo, hi := Bounds(pts)
	if lo[0] != -3 || lo[1] != -1 || hi[0] != 2 || hi[1] != 7 {
		t.Errorf("Bounds = %v %v", lo, hi)
	}
	if lo, hi := Bounds(nil); lo != nil || hi != nil {
		t.Error("Bounds(nil) should return nil, nil")
	}
}

func TestRateSource(t *testing.T) {
	d, err := SDS(SDSConfig{N: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src, err := d.RateSource(1000)
	if err != nil {
		t.Fatal(err)
	}
	pts := stream.Collect(src, 0)
	if len(pts) != 500 {
		t.Fatalf("collected %d", len(pts))
	}
	if math.Abs(pts[499].Time-0.499) > 1e-9 {
		t.Errorf("last timestamp %v, want 0.499", pts[499].Time)
	}
}

// Property: zipfWeights always returns a normalized, decreasing
// distribution.
func TestZipfWeightsQuick(t *testing.T) {
	prop := func(kU uint8, sU uint8) bool {
		k := int(kU%30) + 1
		s := 0.5 + float64(sU%30)/10
		w := zipfWeights(k, s)
		if len(w) != k {
			return false
		}
		var sum float64
		for i, x := range w {
			if x <= 0 {
				return false
			}
			if i > 0 && x > w[i-1]+1e-12 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sampleCategorical always returns a valid index.
func TestSampleCategoricalQuick(t *testing.T) {
	rng := newTestRand()
	prop := func(kU uint8) bool {
		k := int(kU%20) + 1
		w := zipfWeights(k, 1.2)
		idx := sampleCategorical(rng, w)
		return idx >= 0 && idx < k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
