// Package gen provides the synthetic dataset generators used by the
// evaluation (Table 2): the 2-D SDS stream whose clusters merge, split,
// emerge and disappear on a known schedule (Fig. 6/7), the
// high-dimensional HDS stream (Fig. 12), and simulators standing in for
// the three real datasets (KDDCUP99, CoverType, PAMAP2) that the paper
// uses for the performance and quality experiments. Each simulator
// matches the corresponding real dataset's cardinality, dimensionality,
// number of classes and arrival character (burstiness, drift, activity
// segments), which are the properties that drive the paper's curves;
// see DESIGN.md Sec. 4 for the substitution rationale.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/densitymountain/edmstream/internal/stream"
)

// Dataset is a fully materialized synthetic dataset together with the
// metadata reported in Table 2.
type Dataset struct {
	// Name is the dataset identifier (e.g. "SDS", "HDS-100").
	Name string
	// Points are the stream points in arrival order. Timestamps are
	// not set; use stream.RateStamper to stamp a desired arrival rate.
	Points []stream.Point
	// Dim is the dimensionality of the attribute vectors.
	Dim int
	// NumClasses is the number of ground-truth classes.
	NumClasses int
	// SuggestedRadius is a cluster-cell radius r appropriate for the
	// dataset's geometry (the analogue of Table 2's r column).
	SuggestedRadius float64
}

// Len returns the number of points in the dataset.
func (d Dataset) Len() int { return len(d.Points) }

// Source returns a replayable source over the dataset's points.
func (d Dataset) Source() *stream.SliceSource { return stream.NewSliceSource(d.Points) }

// RateSource returns a source that stamps the dataset's points at the
// given arrival rate (points per second) starting at time zero.
func (d Dataset) RateSource(rate float64) (*stream.RateStamper, error) {
	return stream.NewRateStamper(d.Source(), rate, 0)
}

// gaussianPoint samples a point from an isotropic Gaussian centered at
// center with standard deviation sigma.
func gaussianPoint(rng *rand.Rand, center []float64, sigma float64) []float64 {
	v := make([]float64, len(center))
	for i := range center {
		v[i] = center[i] + rng.NormFloat64()*sigma
	}
	return v
}

// uniformPoint samples a point uniformly from the axis-aligned box
// [lo, hi]^dim.
func uniformPoint(rng *rand.Rand, dim int, lo, hi float64) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = lo + rng.Float64()*(hi-lo)
	}
	return v
}

// randomCenters places k well-separated centers uniformly in
// [lo, hi]^dim, resampling any center that lands closer than minSep to
// an already placed one (up to a bounded number of retries so the
// function always terminates).
func randomCenters(rng *rand.Rand, k, dim int, lo, hi, minSep float64) [][]float64 {
	centers := make([][]float64, 0, k)
	const maxRetries = 200
	for len(centers) < k {
		best := uniformPoint(rng, dim, lo, hi)
		for retry := 0; retry < maxRetries; retry++ {
			c := uniformPoint(rng, dim, lo, hi)
			ok := true
			for _, existing := range centers {
				if euclid(c, existing) < minSep {
					ok = false
					break
				}
			}
			if ok {
				best = c
				break
			}
		}
		centers = append(centers, best)
	}
	return centers
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// zipfWeights returns k weights proportional to 1/rank^s, normalized to
// sum to 1. It models the highly skewed class sizes of KDDCUP99.
func zipfWeights(k int, s float64) []float64 {
	w := make([]float64, k)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampleCategorical draws an index from the categorical distribution
// given by weights (which must sum to ~1).
func sampleCategorical(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	var cum float64
	for i, w := range weights {
		cum += w
		if u <= cum {
			return i
		}
	}
	return len(weights) - 1
}

// SuggestRadius returns the q-quantile (q in (0,1), e.g. 0.01 for 1%)
// of the pairwise distances of a sample of the points, which is how the
// paper (following Rodriguez & Laio) chooses the cluster-cell radius r
// and how Sec. 6.7 sweeps r from 0.5% to 2%.
func SuggestRadius(points []stream.Point, q float64, maxSample int) (float64, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("gen: need at least 2 points to suggest a radius, have %d", len(points))
	}
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("gen: quantile %v out of range (0,1)", q)
	}
	if maxSample <= 1 {
		maxSample = 500
	}
	rng := rand.New(rand.NewSource(42))
	sample := points
	if len(points) > maxSample {
		sample = make([]stream.Point, maxSample)
		for i := range sample {
			sample[i] = points[rng.Intn(len(points))]
		}
	}
	var dists []float64
	for i := 0; i < len(sample); i++ {
		for j := i + 1; j < len(sample); j++ {
			dists = append(dists, sample[i].Distance(sample[j]))
		}
	}
	sort.Float64s(dists)
	idx := int(q * float64(len(dists)))
	if idx >= len(dists) {
		idx = len(dists) - 1
	}
	return dists[idx], nil
}

// Bounds returns the per-dimension min and max over the dataset's
// points, useful for sizing grid-based baselines.
func Bounds(points []stream.Point) (lo, hi []float64) {
	if len(points) == 0 {
		return nil, nil
	}
	dim := points[0].Dim()
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	copy(lo, points[0].Vector)
	copy(hi, points[0].Vector)
	for _, p := range points[1:] {
		for i, v := range p.Vector {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	return lo, hi
}
