module github.com/densitymountain/edmstream

go 1.24
