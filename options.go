package edmstream

import "github.com/densitymountain/edmstream/internal/core"

// Options configures a Clusterer. Only Radius is required; every other
// field has a default matching the paper's experimental setup.
type Options struct {
	// Radius is the cluster-cell radius r: a new point joins an
	// existing cluster-cell when it is within Radius of the cell's
	// seed. Required. SuggestRadius helps pick a value from a sample of
	// the stream (the paper uses the 0.5%–2% pairwise-distance
	// quantile).
	Radius float64
	// Decay is the freshness decay model. The zero value selects the
	// paper's setting (a = 0.998 per arriving point, expressed against
	// the seconds clock as a = 0.998, λ = Rate).
	Decay Decay
	// Beta controls the active-cell density threshold: a cell is active
	// when its density reaches the fraction Beta of the stream's
	// steady-state total weight. Default 0.005 (see internal/core's
	// Config for why this differs from the paper's 0.0021).
	Beta float64
	// Rate is the expected arrival rate v in points per second.
	// Default 1000.
	Rate float64
	// Tau is the cluster-separation threshold: dependency links longer
	// than Tau separate density mountains. Zero lets the clusterer pick
	// τ from the initial decision graph (see TauSelector), which is the
	// paper's recommended mode.
	Tau float64
	// AdaptiveTau enables dynamic re-tuning of Tau as the stream
	// evolves (Sec. 5 of the paper).
	AdaptiveTau bool
	// TauSelector picks the initial τ from the decision graph; nil uses
	// the built-in largest-gap heuristic.
	TauSelector TauSelector
	// Alpha overrides the fitted balance parameter of the adaptive-τ
	// objective; zero fits it from the initial τ.
	Alpha float64
	// InitPoints is the number of points buffered before the DP-Tree is
	// initialized. Default 500.
	InitPoints int
	// Filters selects the dependency-update filters; the default
	// enables both the density filter and the triangle-inequality
	// filter. Use DisableFilters to run without them (only useful for
	// benchmarking the filters themselves).
	Filters FilterMode
	// DisableFilters turns every filter off (the paper's "wf"
	// configuration). It exists because the zero FilterMode means
	// "default".
	DisableFilters bool
	// EvolutionInterval is the stream-time interval in seconds between
	// cluster-evolution checks. Default 1.0; set negative to disable
	// automatic tracking.
	EvolutionInterval float64
	// SweepInterval is the stream-time interval in seconds between
	// maintenance sweeps. Default 1.0.
	SweepInterval float64
	// DeleteDelay is the idle time in seconds after which an inactive
	// cluster-cell is deleted. Zero uses the paper's Theorem 3 bound.
	DeleteDelay float64
	// MaxEvents caps the evolution log length. Zero keeps every event.
	MaxEvents int
	// IndexPolicy selects the nearest-seed index for the per-point hot
	// path. The default (IndexAuto) uses a uniform grid hash over seed
	// coordinates for low-dimensional Euclidean streams and a linear
	// scan otherwise (token-set streams, high dimensionality). All
	// policies produce identical clustering output; the knob exists
	// for benchmarking and for overriding the auto heuristic.
	IndexPolicy IndexPolicy
	// IngestWorkers is the number of workers InsertBatch may use for
	// its parallel route phase, which finds each batch point's nearest
	// cell against a frozen view of the seed index before the serial
	// apply phase validates and commits the results. Zero (the
	// default) resolves to GOMAXPROCS; one keeps batched ingestion
	// fully single-threaded (the pre-parallel behavior); negative
	// values fail validation. The clustering output is byte-identical
	// for every worker count — parallelism only changes how fast the
	// routing work is done, never its outcome.
	IngestWorkers int
	// DetailedStats enables the per-point wall-clock instrumentation
	// behind Stats.AssignTime and Stats.DependencyUpdateTime. It is off
	// by default: the clock reads are fixed overhead on the ingest hot
	// path, and the clustering output is identical either way. Turn it
	// on to reproduce the paper's Fig. 11 accounting.
	DetailedStats bool
}

// toCore converts the public options to the internal configuration.
func (o Options) toCore() core.Config {
	cfg := core.Config{
		Radius:            o.Radius,
		Decay:             o.Decay,
		Beta:              o.Beta,
		Rate:              o.Rate,
		Tau:               o.Tau,
		AdaptiveTau:       o.AdaptiveTau,
		TauSelector:       o.TauSelector,
		Alpha:             o.Alpha,
		InitPoints:        o.InitPoints,
		EvolutionInterval: o.EvolutionInterval,
		SweepInterval:     o.SweepInterval,
		DeleteDelay:       o.DeleteDelay,
		MaxEvents:         o.MaxEvents,
		IndexPolicy:       o.IndexPolicy,
		IngestWorkers:     o.IngestWorkers,
		DetailedStats:     o.DetailedStats,
	}
	if o.DisableFilters {
		cfg.SetFilters(core.FilterNone)
	} else if o.Filters != core.FilterNone {
		cfg.SetFilters(o.Filters)
	}
	return cfg
}

// Validate checks the options without building a Clusterer.
func (o Options) Validate() error { return o.toCore().Validate() }
