package edmstream

import (
	"io"

	"github.com/densitymountain/edmstream/internal/core"
)

// Clusterer is an online stream clusterer implementing the EDMStream
// algorithm. Create one with New, feed it points with Insert, and query
// the clustering with Snapshot and the evolution log with Events.
//
// Concurrency: the mutating methods (Insert, InsertBatch, Snapshot,
// Clusters, DecisionGraph, Tau, Alpha, Now) must all be called from a
// single owner goroutine. The read-only serving methods — LastSnapshot,
// Assign, AssignBatch, Events and Stats — are lock-free and safe to
// call from any number of goroutines concurrently with ingestion; see
// the README's concurrency table.
type Clusterer struct {
	core *core.EDMStream
}

// New creates a Clusterer with the given options.
func New(opts Options) (*Clusterer, error) {
	c, err := core.New(opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Clusterer{core: c}, nil
}

// Insert consumes one stream point. Points must carry either a numeric
// vector or a token set, and a non-negative timestamp; invalid points
// are rejected without changing the clusterer's state.
func (c *Clusterer) Insert(p Point) error { return c.core.Insert(p) }

// InsertBatch consumes a batch of stream points in order. It produces
// exactly the same clustering as inserting the points one by one —
// identical snapshots, cells and evolution events — but amortizes the
// per-point bookkeeping and, when Options.IngestWorkers allows (the
// default is GOMAXPROCS), routes the batch's points to their nearest
// cells on a parallel worker pool before the serial apply phase
// validates and commits the results, which makes it the preferred
// ingestion call when points arrive in groups (network reads, log
// segments, bursty sources). Validation is all-or-nothing: if any
// point is invalid the whole batch is rejected with no state change.
func (c *Clusterer) InsertBatch(pts []Point) error { return c.core.InsertBatch(pts) }

// InsertBatchAssigned consumes a batch exactly like InsertBatch and
// additionally reports, per point, the ID of the cluster-cell that
// absorbed it (the new cell's ID when the point seeded one). dst is
// overwritten (reusing its backing; pass nil to allocate) and
// returned. The IDs name cells at absorption time — a later sweep may
// delete an acked cell — and are cell IDs, not cluster IDs. The
// serving daemon (cmd/edmserved) uses this call to hand each coalesced
// ingest request its per-point acks.
func (c *Clusterer) InsertBatchAssigned(pts []Point, dst []int64) ([]int64, error) {
	return c.core.InsertBatchAssigned(pts, dst)
}

// Snapshot refreshes and returns the current clustering: the clusters
// (maximal strongly dependent subtrees of the DP-Tree), the τ used to
// separate them, and cell counts. The result is an independent deep
// copy the caller may hold or mutate freely. Owner goroutine only; a
// serving goroutine that just wants to read should use LastSnapshot.
func (c *Clusterer) Snapshot() Snapshot { return c.core.Snapshot() }

// LastSnapshot returns the most recent published snapshot without
// recomputing the clustering. It is lock-free and safe to call from
// any goroutine concurrently with ingestion; the returned snapshot is
// a shared read-only view — treat its slices as immutable (use
// Snapshot from the owner goroutine for an owned, mutable copy).
func (c *Clusterer) LastSnapshot() Snapshot { return c.core.LastSnapshot() }

// Assign classifies a point against the most recent published
// snapshot: it reports the cluster whose member cell's seed is nearest
// to p within the cell radius, or ok == false when no cluster claims
// the point (an outlier, or no snapshot has been published yet).
//
// Assign is the serving-path query: it is lock-free, allocation-free,
// and safe to call from any number of goroutines concurrently with
// Insert/InsertBatch — readers never block or slow the write path.
// The classification reflects the clustering as of the last refresh,
// not the live in-flight state.
func (c *Clusterer) Assign(p Point) (clusterID int, ok bool) { return c.core.Assign(p) }

// AssignBatch classifies every point in pts against one consistent
// published snapshot. It overwrites dst (reusing its backing; pass nil
// to allocate) with one cluster ID per point and returns it, with
// AssignOutlier for points no cluster claims. Like Assign it is safe
// for concurrent use with ingestion.
func (c *Clusterer) AssignBatch(pts []Point, dst []int) []int { return c.core.AssignBatch(pts, dst) }

// AssignOutlier is the cluster ID AssignBatch reports for points no
// cluster claims.
const AssignOutlier = core.AssignOutlier

// Events returns the cluster evolution log: every emerge, disappear,
// split, merge and adjust activity detected so far, in time order.
// Safe to call from any goroutine concurrently with ingestion.
func (c *Clusterer) Events() []Event { return c.core.Events() }

// EventsSince returns the evolution events with sequence number >=
// cursor together with the next cursor, supporting resumable
// consumption of the log (the serving daemon's GET /v1/events).
// Sequence numbers start at 0 and follow log order.
//
// The cursor contract: a cursor at or past the end returns an empty
// slice (never an error) with the current end cursor; passing the
// returned cursor back yields exactly the events recorded in between;
// the returned cursor only advances when new events are recorded —
// an intervening clustering refresh that detects no activity leaves
// it unchanged. When Options.MaxEvents trims the log, a cursor
// pointing into the trimmed prefix resumes at the oldest retained
// event. Safe to call from any goroutine concurrently with ingestion.
func (c *Clusterer) EventsSince(cursor uint64) ([]Event, uint64) {
	return c.core.EventsSince(cursor)
}

// DecisionGraph returns the current decision graph: each active
// cluster-cell's (density, dependent distance) pair. Plotting δ against
// ρ reproduces the paper's Fig. 2b / Fig. 15.
func (c *Clusterer) DecisionGraph() []DecisionPoint { return c.core.DecisionGraph() }

// Stats returns the clusterer's internal counters (cells created,
// promotions/demotions, filter hit counts, accumulated dependency
// update time, ...). Safe to call from any goroutine concurrently with
// ingestion: each counter is individually no staler than the owner's
// previous call (a reader racing the owner may mix counters from two
// adjacent calls; from the owner goroutine the values are exact).
func (c *Clusterer) Stats() Stats { return c.core.Stats() }

// Tau returns the cluster-separation threshold currently in effect.
func (c *Clusterer) Tau() float64 { return c.core.Tau() }

// Alpha returns the balance parameter used by the adaptive-τ objective.
func (c *Clusterer) Alpha() float64 { return c.core.Alpha() }

// Now returns the latest stream time the clusterer has observed.
func (c *Clusterer) Now() float64 { return c.core.Now() }

// ReservoirBound returns the theoretical upper bound on the number of
// inactive cluster-cells held in the outlier reservoir.
func (c *Clusterer) ReservoirBound() float64 { return c.core.ReservoirBound() }

// IndexKind reports which nearest-seed index the stream resolved to
// ("grid" or "linear"; empty before the first point arrives). The
// choice is controlled by Options.IndexPolicy.
func (c *Clusterer) IndexKind() string { return c.core.IndexKind() }

// WriteCheckpoint serializes the clusterer's complete state to w
// (CRC-protected). A clusterer restored from the checkpoint and fed
// the remainder of the stream produces output byte-identical to one
// that was never checkpointed — identical snapshots, cells, evolution
// events, statistics and τ. Owner goroutine only.
func (c *Clusterer) WriteCheckpoint(w io.Writer) error {
	return c.core.EncodeCheckpoint(w)
}

// RestoreCheckpoint replaces the clusterer's state with a checkpoint
// previously written by WriteCheckpoint under the same options. On
// error the clusterer is left unchanged. Owner goroutine only; no
// reader may hold the clusterer concurrently with a restore.
func (c *Clusterer) RestoreCheckpoint(r io.Reader) error {
	e, err := core.DecodeCheckpoint(c.core.Config(), r)
	if err != nil {
		return err
	}
	c.core = e
	return nil
}
