// Cross-algorithm integration tests: they exercise the public API
// together with the internal batch algorithms to check that the
// streaming clustering agrees with its batch ancestor on stationary
// data, and that every stream algorithm in the repository produces a
// label-consistent clustering on an easy workload.
//
// External test package: internal/bench imports the root package (the
// e2e network experiment), so importing it from an in-package test
// would be a cycle.
package edmstream_test

import (
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/bench"
	"github.com/densitymountain/edmstream/internal/dpclust"
	"github.com/densitymountain/edmstream/internal/gen"
	"github.com/densitymountain/edmstream/internal/metrics"
	"github.com/densitymountain/edmstream/internal/stream"
)

// stationaryBlobs builds a stream from k static, well separated blobs.
func stationaryBlobs(k, n int, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = []float64{float64(i) * 12, float64(i%2) * 12}
	}
	pts := make([]stream.Point, n)
	for i := range pts {
		c := i % k
		pts[i] = stream.Point{
			ID:     int64(i),
			Vector: []float64{centers[c][0] + rng.NormFloat64()*0.6, centers[c][1] + rng.NormFloat64()*0.6},
			Label:  c,
			Time:   float64(i) / 1000,
		}
	}
	return pts
}

// TestStreamingMatchesBatchDPOnStationaryData checks that on a
// stationary stream EDMStream finds the same cluster structure as the
// batch Density Peaks algorithm it generalizes (Sec. 2): same number of
// clusters, and the same grouping of the ground-truth classes.
func TestStreamingMatchesBatchDPOnStationaryData(t *testing.T) {
	const k = 3
	pts := stationaryBlobs(k, 6000, 5)

	// Streaming clustering.
	c, err := edmstream.New(edmstream.Options{Radius: 1.0, Tau: 4, Rate: 1000, InitPoints: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if snap.NumClusters() != k {
		t.Fatalf("EDMStream found %d clusters, want %d", snap.NumClusters(), k)
	}

	// Batch DP clustering over a sample of the same data.
	sample := pts[len(pts)-1500:]
	batch, err := dpclust.Cluster(sample, dpclust.Config{CutoffDistance: 1.0, Tau: 4, Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if batch.NumClusters() != k {
		t.Fatalf("batch DP found %d clusters, want %d", batch.NumClusters(), k)
	}

	// Both clusterings must be label-consistent: every ground-truth
	// class maps to exactly one cluster in each result.
	streamAssign := stream.AssignToClusters(sample, snap.MacroClusters(), 0)
	for name, assign := range map[string][]int{"EDMStream": streamAssign, "batch DP": batch.Assignment} {
		classToCluster := map[int]map[int]int{}
		for i, a := range assign {
			if a < 0 {
				continue
			}
			label := sample[i].Label
			if classToCluster[label] == nil {
				classToCluster[label] = map[int]int{}
			}
			classToCluster[label][a]++
		}
		for label, counts := range classToCluster {
			best, total := 0, 0
			for _, cnt := range counts {
				total += cnt
				if cnt > best {
					best = cnt
				}
			}
			if float64(best) < 0.95*float64(total) {
				t.Errorf("%s: class %d is split across clusters: %v", name, label, counts)
			}
		}
	}
}

// TestAllAlgorithmsClusterAnEasyStream runs every stream clustering
// algorithm in the repository over the same well separated workload and
// checks that each produces a clustering of reasonable quality (CMM),
// which guards against any baseline silently degenerating.
func TestAllAlgorithmsClusterAnEasyStream(t *testing.T) {
	ds := gen.Dataset{
		Name:            "easy-blobs",
		Points:          stationaryBlobs(3, 5000, 9),
		Dim:             2,
		NumClasses:      3,
		SuggestedRadius: 1.0,
	}
	algos, err := bench.Algorithms(ds, 1000)
	if err != nil {
		t.Fatal(err)
	}
	window := ds.Points[len(ds.Points)-1000:]
	for _, a := range algos {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, p := range ds.Points {
				if err := a.Clusterer.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			clusters := a.Clusterer.Clusters(window[len(window)-1].Time)
			if len(clusters) == 0 {
				t.Fatal("no clusters reported")
			}
			assign := stream.AssignToClusters(window, clusters, 0)
			cmm, err := metrics.CMM(window, assign, metrics.CMMConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if cmm < 0.8 {
				t.Errorf("CMM = %.3f on an easy stream, want >= 0.8", cmm)
			}
		})
	}
}
