// Command edmbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment ID corresponds to one table or
// figure (see DESIGN.md for the full index):
//
//	edmbench [flags] <experiment>
//
//	experiments: table2, fig6, fig7, fig8, fig9, fig10, fig11, fig12,
//	             fig13, fig14, fig15 (alias table4), fig16, fig17,
//	             ablation, index, throughput, serve, parallel, e2e,
//	             wal, overload, dr, tenants, all
//
// Flags control the workload scale; the defaults are large enough to
// reproduce the paper's curve shapes while finishing in minutes on a
// laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/densitymountain/edmstream/internal/bench"
)

// throughputJSON, serveJSON and parallelJSON are the artifact paths
// of the throughput, serve and parallel experiments (set by the
// -json / -servejson / -parjson flags); minSpeedup is the parallel
// experiment's assertion threshold.
var (
	throughputJSON string
	serveJSON      string
	parallelJSON   string
	e2eJSON        string
	walJSON        string
	overloadJSON   string
	drJSON         string
	tenancyJSON    string
	minSpeedup     float64
)

func main() {
	// The wal kill-and-restart drill and the overload drill re-exec
	// this binary as their durable serving children; divert before
	// flag parsing.
	if os.Getenv("EDMBENCH_WAL_CHILD") == "1" {
		if err := bench.RunWALChild(); err != nil {
			fmt.Fprintf(os.Stderr, "edmbench: wal child: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if os.Getenv("EDMBENCH_OVERLOAD_CHILD") == "1" {
		if err := bench.RunOverloadChild(); err != nil {
			fmt.Fprintf(os.Stderr, "edmbench: overload child: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if os.Getenv("EDMBENCH_TENANTS_CHILD") == "1" {
		if err := bench.RunTenantsChild(); err != nil {
			fmt.Fprintf(os.Stderr, "edmbench: tenants child: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if os.Getenv("EDMBENCH_DR_CHILD") == "1" {
		if err := bench.RunDRChild(); err != nil {
			fmt.Fprintf(os.Stderr, "edmbench: dr child: %v\n", err)
			os.Exit(1)
		}
		return
	}
	points := flag.Int("points", 20000, "stream length per dataset")
	seed := flag.Int64("seed", 1, "random seed for the synthetic generators")
	rate := flag.Float64("rate", 1000, "arrival rate in points per second")
	flag.StringVar(&throughputJSON, "json", "BENCH_throughput.json",
		"path of the machine-readable artifact the throughput experiment writes (empty disables it)")
	flag.StringVar(&serveJSON, "servejson", "BENCH_serve.json",
		"path of the machine-readable artifact the serve experiment writes (empty disables it)")
	flag.StringVar(&parallelJSON, "parjson", "BENCH_parallel.json",
		"path of the machine-readable artifact the parallel experiment writes (empty disables it)")
	flag.StringVar(&e2eJSON, "e2ejson", "BENCH_e2e.json",
		"path of the machine-readable artifact the e2e experiment writes (empty disables it)")
	flag.StringVar(&walJSON, "waljson", "BENCH_wal.json",
		"path of the machine-readable artifact the wal experiment writes (empty disables it)")
	flag.StringVar(&overloadJSON, "overloadjson", "BENCH_overload.json",
		"path of the machine-readable artifact the overload drill writes (empty disables it)")
	flag.StringVar(&drJSON, "drjson", "BENCH_recovery.json",
		"path of the machine-readable artifact the disaster-recovery drill writes (empty disables it)")
	flag.StringVar(&tenancyJSON, "tenancyjson", "BENCH_tenancy.json",
		"path of the machine-readable artifact the tenants drill writes (empty disables it)")
	flag.Float64Var(&minSpeedup, "minspeedup", 0,
		"fail the parallel experiment when the 4-worker speedup falls below this ratio (0 disables; skipped on machines with fewer than 4 CPUs)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	scale := bench.Scale{Points: *points, Seed: *seed, Rate: *rate}
	if err := run(flag.Arg(0), scale); err != nil {
		fmt.Fprintf(os.Stderr, "edmbench: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: edmbench [flags] <experiment>

experiments:
  table2    dataset inventory (Table 2)
  fig6      SDS snapshots over time (Fig. 6)
  fig7      cluster evolution activities on SDS (Fig. 7)
  fig8      news recommendation use case (Fig. 8 / Table 3)
  fig9      response time vs baselines (Fig. 9 a-c)
  fig10     throughput vs baselines (Fig. 10 a-c)
  fig11     effect of the filtering strategies (Fig. 11 a-c)
  fig12     response time vs dimensionality (Fig. 12)
  fig13     cluster quality (CMM) vs baselines (Fig. 13 a-c)
  fig14     cluster quality vs stream rate (Fig. 14)
  fig15     dynamic vs static tau (Fig. 15 / Table 4); alias: table4
  fig16     outlier reservoir size vs bound (Fig. 16 a-b)
  fig17     effect of the cluster-cell radius (Fig. 17 a-b)
  ablation  extra design-choice studies
  index     nearest-seed index: grid vs linear insert throughput
  throughput  ingestion: per-point Insert vs batched InsertBatch
              (writes the machine-readable BENCH_throughput.json artifact)
  serve     serving layer: incremental vs full snapshot refresh, and
            concurrent Assign queries (1 writer + 4 readers; writes the
            machine-readable BENCH_serve.json artifact)
  parallel  parallel speculative routing: InsertBatch worker sweep with
            speculation hit rate (writes the machine-readable
            BENCH_parallel.json artifact; -minspeedup asserts scaling)
  e2e       end-to-end serving: boots edmserved on loopback and drives
            it with concurrent HTTP writers + readers; reports ingest
            points/sec, assign qps, per-endpoint latency quantiles and
            the coalescer batch-size distribution (writes the
            machine-readable BENCH_e2e.json artifact)
  wal       durability: ingest throughput with the WAL fsync on vs off,
            then a kill-and-restart drill — SIGKILL a durable serving
            child mid-traffic, restart it on the same WAL directory and
            require byte-identical recovery of every acknowledged point
            (writes the machine-readable BENCH_wal.json artifact)
  overload  resilience: drive a durable serving child at 4x its (fault-
            injected slow-disk) capacity while the disk dies and heals;
            require clean 429/503 shedding with Retry-After, automatic
            degraded-mode entry and recovery, and exact survival of
            every acknowledged point across a drain and restart (writes
            the machine-readable BENCH_overload.json artifact)
  tenants   multi-tenant serving: 32 named streams over the bounded
            writer pool under a memory budget forcing eviction/revival
            churn, SIGKILLed mid-traffic and restarted; every stream's
            recovered clustering must be byte-identical to a solo
            reference replay of its acknowledged batches, and the
            aggregate ingest rate must beat the single-stream baseline
            on multi-core machines (writes the machine-readable
            BENCH_tenancy.json artifact)
  dr        disaster recovery: a durable serving child ships compressed
            checkpoints and sealed WAL segments to a fault-injected
            object store; a total remote outage must not fail a single
            ingest ack (only report archive-lagging), then the child is
            SIGKILLed, its data directory destroyed, and a fresh child
            restores from the flaky remote inside the recovery budget
            with a byte-identical clustering (writes the machine-
            readable BENCH_recovery.json artifact)
  all       run every experiment

flags:
`)
	flag.PrintDefaults()
}

func run(id string, s bench.Scale) error {
	switch id {
	case "table2":
		rows, err := bench.RunTable2(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(rows))
	case "fig6":
		snaps, err := bench.RunFig6(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig6(snaps))
	case "fig7":
		events, scripted, err := bench.RunFig7(s)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 7: cluster evolution activities (SDS)")
		fmt.Println("scripted ground-truth schedule (fractions of the stream):")
		for _, e := range scripted {
			fmt.Printf("  %-10s at %.0f%% of the stream\n", e.Kind, e.Fraction*100)
		}
		fmt.Println("detected activities:")
		for _, e := range events {
			fmt.Printf("  %s\n", e)
		}
	case "fig8":
		res, err := bench.RunFig8(s)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 8 / Table 3: news-stream cluster evolution")
		fmt.Println("scripted topic schedule:")
		for _, e := range res.Scripted {
			fmt.Printf("  %-6s at %.0f%% of the stream: %v\n", e.Kind, e.Fraction*100, e.Topics)
		}
		fmt.Println("detected activities:")
		for _, e := range res.Events {
			fmt.Printf("  %s\n", e)
		}
		fmt.Println("final clusters (tags):")
		for _, c := range res.FinalClusters {
			fmt.Printf("  cluster %d (%d cells): %v\n", c.ID, c.Size, c.Tags)
		}
	case "fig9", "fig10", "fig13":
		computeCMM := id == "fig13"
		for _, name := range bench.ComparisonDatasets() {
			results, err := bench.RunComparison(name, s, computeCMM)
			if err != nil {
				return err
			}
			switch id {
			case "fig9":
				fmt.Print(bench.FormatComparisonResponseTime(name, results))
			case "fig10":
				fmt.Print(bench.FormatComparisonThroughput(name, results))
			case "fig13":
				fmt.Print(bench.FormatComparisonCMM(name, results))
			}
			fmt.Println()
		}
	case "fig11":
		for _, name := range bench.ComparisonDatasets() {
			results, err := bench.RunFig11(name, s)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFig11(name, results))
			fmt.Println()
		}
	case "fig12":
		results, err := bench.RunFig12([]int{10, 30, 100, 300, 1000}, s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig12(results))
	case "fig14":
		results, err := bench.RunFig14(nil, s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig14(results))
	case "fig15", "table4":
		tc, err := bench.RunTable4(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable4(tc))
	case "fig16":
		for _, name := range []string{"covertype", "pamap2"} {
			results, err := bench.RunFig16(name, nil, s)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFig16(name, results))
			fmt.Println()
		}
	case "fig17":
		results, err := bench.RunFig17(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig17(results))
	case "ablation":
		results, err := bench.RunAblation(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation(results))
	case "index":
		results, err := bench.RunIndexBench(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatIndexBench(results))
	case "throughput":
		rep, err := bench.RunThroughput(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatThroughput(rep))
		if throughputJSON != "" {
			if err := bench.WriteThroughputJSON(throughputJSON, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", throughputJSON)
		}
	case "serve":
		rep, err := bench.RunServe(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatServe(rep))
		if serveJSON != "" {
			if err := bench.WriteServeJSON(serveJSON, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", serveJSON)
		}
	case "parallel":
		rep, err := bench.RunParallel(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatParallel(rep))
		if parallelJSON != "" {
			if err := bench.WriteParallelJSON(parallelJSON, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", parallelJSON)
		}
		if minSpeedup > 0 {
			// The assertion needs real hardware parallelism: with fewer
			// than 4 CPUs — or GOMAXPROCS capped below 4, which bounds
			// the pool regardless of the hardware — the 4-worker pool
			// timeshares cores and the wall-clock ratio measures the
			// scheduler, not the pipeline.
			if procs := min(runtime.NumCPU(), runtime.GOMAXPROCS(0)); procs < 4 {
				fmt.Printf("skipping speedup assertion: %d usable CPUs < 4 workers\n", procs)
			} else if rep.SpeedupAt4 < minSpeedup {
				return fmt.Errorf("parallel speedup at 4 workers %.2fx below required %.2fx", rep.SpeedupAt4, minSpeedup)
			}
		}
	case "e2e":
		rep, err := bench.RunE2E(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatE2E(rep))
		if e2eJSON != "" {
			if err := bench.WriteE2EJSON(e2eJSON, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", e2eJSON)
		}
	case "wal":
		rep, err := bench.RunWAL(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatWAL(rep))
		if walJSON != "" {
			if err := bench.WriteWALJSON(walJSON, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", walJSON)
		}
	case "overload":
		rep, err := bench.RunOverload(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatOverload(rep))
		if overloadJSON != "" {
			if err := bench.WriteOverloadJSON(overloadJSON, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", overloadJSON)
		}
	case "dr":
		rep, err := bench.RunDR(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatDR(rep))
		if drJSON != "" {
			if err := bench.WriteDRJSON(drJSON, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", drJSON)
		}
	case "tenants":
		rep, err := bench.RunTenants(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTenants(rep))
		if tenancyJSON != "" {
			if err := bench.WriteTenantsJSON(tenancyJSON, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", tenancyJSON)
		}
	case "all":
		ids := []string{"table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "ablation", "index", "throughput", "serve", "parallel", "e2e", "wal", "overload", "dr", "tenants"}
		for _, sub := range ids {
			fmt.Printf("===== %s =====\n", sub)
			if err := run(sub, s); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown experiment %q (run edmbench -h for the list)", id)
	}
	return nil
}
