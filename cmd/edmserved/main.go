// Command edmserved serves an EDMStream clusterer over HTTP/JSON: the
// network face of this repository. It ingests batched point streams
// through a request coalescer, classifies points against the
// published clustering, streams cluster-evolution events to consumers
// through cursor-based long-polling, and exports operational
// telemetry in Prometheus format.
//
//	edmserved -radius 0.5 -addr :8080
//
// Endpoints (un-prefixed paths alias the "default" stream; prefix any
// of the /v1/ data endpoints with a stream name — /v1/{stream}/ingest,
// /v1/{stream}/snapshot, ... — to address a named tenant, lazily
// created on first ingest and evicted to disk when idle or over the
// memory budget):
//
//	POST /v1/ingest            batched ingest (JSON array or NDJSON body)
//	POST /v1/assign            classify points against the published snapshot
//	GET  /v1/snapshot          the published clustering (summaries)
//	GET  /v1/clusters/{id}     one cluster with member cells and seeds
//	GET  /v1/events            evolution events; ?cursor=N&wait=30s long-polls
//	GET  /v1/stats             engine counters + coalescer + tenancy telemetry
//	GET  /v1/streams           every registered stream with state and footprint
//	DELETE /v1/streams/{name}  checkpoint + evict one stream (revives on touch)
//	GET  /healthz              liveness (503 while draining; per-stream detail lines)
//	GET  /metrics              Prometheus text format (stream-labeled series)
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops
// accepting, in-flight requests finish, parked long-polls return, and
// every acknowledged ingest request is committed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/server"
)

// cliConfig carries every flag value; kept as a struct so the
// flag-to-options mapping is testable without running main.
type cliConfig struct {
	addr            string
	radius          float64
	rate            float64
	beta            float64
	tau             float64
	adaptiveTau     bool
	initPoints      int
	ingestWorkers   int
	maxEvents       int
	coalesceWindow  time.Duration
	maxBatch        int
	maxPending      int
	longPollTimeout time.Duration
	maxBodyBytes    int64
	shutdownGrace   time.Duration
	dataDir         string
	walSegmentBytes int64
	walNoSync       bool
	checkpointEvery int

	readTimeout      time.Duration
	writeTimeout     time.Duration
	idleTimeout      time.Duration
	ingestDeadline   time.Duration
	readConcurrency  int
	probeInterval    time.Duration
	walRetryAttempts int

	archiveURL         string
	archiveQueue       int
	archiveRetryBase   time.Duration
	archiveRetryMax    time.Duration
	recoveryBudget     time.Duration
	checkpointCompress bool
	restoreFromArchive bool

	maxStreams     int
	writerPool     int
	memoryBudget   sizeFlag
	evictIdleAfter time.Duration
	sweepInterval  time.Duration
}

// sizeFlag is a byte count flag accepting plain integers or binary
// suffixes: 1048576, 64KiB, 512MiB, 2GiB (also the K/M/G shorthands).
type sizeFlag int64

func (s *sizeFlag) String() string { return strconv.FormatInt(int64(*s), 10) }

func (s *sizeFlag) Set(v string) error {
	n, err := parseSize(v)
	if err != nil {
		return err
	}
	*s = sizeFlag(n)
	return nil
}

func parseSize(v string) (int64, error) {
	str := strings.TrimSpace(v)
	mult := int64(1)
	lower := strings.ToLower(str)
	for _, suf := range []struct {
		s string
		m int64
	}{
		{"gib", 1 << 30}, {"mib", 1 << 20}, {"kib", 1 << 10},
		{"g", 1 << 30}, {"m", 1 << 20}, {"k", 1 << 10}, {"b", 1},
	} {
		if strings.HasSuffix(lower, suf.s) {
			mult = suf.m
			str = strings.TrimSpace(str[:len(str)-len(suf.s)])
			break
		}
	}
	n, err := strconv.ParseInt(str, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("size %q: want an integer byte count with an optional KiB/MiB/GiB suffix", v)
	}
	if n < 0 {
		return 0, fmt.Errorf("size %q must be non-negative", v)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("size %q overflows", v)
	}
	return n * mult, nil
}

func registerFlags(fs *flag.FlagSet, c *cliConfig) {
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8080", "TCP listen address")
	fs.Float64Var(&c.radius, "radius", 0, "cluster-cell radius r (required; see edmstream.SuggestRadius)")
	fs.Float64Var(&c.rate, "rate", 1000, "expected arrival rate in points per second")
	fs.Float64Var(&c.beta, "beta", 0, "active-cell density threshold fraction (0 = library default)")
	fs.Float64Var(&c.tau, "tau", 0, "static cluster-separation threshold (0 = choose from the decision graph)")
	fs.BoolVar(&c.adaptiveTau, "adaptive-tau", false, "re-tune tau as the stream evolves")
	fs.IntVar(&c.initPoints, "init-points", 0, "points buffered before the DP-Tree initializes (0 = library default)")
	fs.IntVar(&c.ingestWorkers, "ingest-workers", 0, "parallel route-phase workers per batch (0 = GOMAXPROCS)")
	fs.IntVar(&c.maxEvents, "max-events", 0, "evolution log cap (0 = unlimited; cursors stay stable across trimming)")
	fs.DurationVar(&c.coalesceWindow, "coalesce-window", 2*time.Millisecond, "how long the ingest coalescer holds a batch open for more requests")
	fs.IntVar(&c.maxBatch, "max-batch", 0, "max points per coalesced batch (0 = default 4096)")
	fs.IntVar(&c.maxPending, "max-pending", 0, "max queued ingest requests before backpressure (0 = default 1024)")
	fs.DurationVar(&c.longPollTimeout, "longpoll-timeout", 30*time.Second, "max /v1/events long-poll hold time")
	fs.Int64Var(&c.maxBodyBytes, "max-body", 0, "max request body bytes (0 = default 8 MiB)")
	fs.DurationVar(&c.shutdownGrace, "shutdown-grace", 15*time.Second, "max wait for in-flight requests at shutdown")
	fs.StringVar(&c.dataDir, "data-dir", "", "durability directory: WAL + checkpoints; empty serves in memory only")
	fs.Int64Var(&c.walSegmentBytes, "wal-segment-bytes", 0, "WAL segment rotation threshold (0 = default 64 MiB)")
	fs.BoolVar(&c.walNoSync, "wal-nosync", false, "skip the fsync-before-ack (throughput mode; acknowledged data may be lost in a crash)")
	fs.IntVar(&c.checkpointEvery, "checkpoint-every", 0, "points committed between engine checkpoints into the WAL (0 = default 50000)")
	fs.DurationVar(&c.readTimeout, "read-timeout", 0, "max time to read one request (0 = default 30s)")
	fs.DurationVar(&c.writeTimeout, "write-timeout", 0, "max time to write one response; must exceed -longpoll-timeout (0 = longpoll-timeout + 30s)")
	fs.DurationVar(&c.idleTimeout, "idle-timeout", 0, "max keep-alive idle time per connection (0 = default 2m)")
	fs.DurationVar(&c.ingestDeadline, "ingest-deadline", 0, "max queue-admission wait before an ingest request is shed with 429 (0 = default 5s)")
	fs.IntVar(&c.readConcurrency, "read-concurrency", 0, "max concurrent data-plane reads before 429 shedding (0 = default 256)")
	fs.DurationVar(&c.probeInterval, "degraded-probe-interval", 0, "how often a degraded server probes the WAL for recovery (0 = default 1s)")
	fs.IntVar(&c.walRetryAttempts, "wal-retry-attempts", 0, "durable-append attempts before the server degrades to read-only (0 = default 3)")
	fs.StringVar(&c.archiveURL, "archive-url", "", "remote archive for sealed WAL segments and checkpoints: file://path or a plain directory path; empty disables shipping")
	fs.IntVar(&c.archiveQueue, "archive-queue", 0, "upload-notification queue length before the shipper falls back to a resync (0 = default 64)")
	fs.DurationVar(&c.archiveRetryBase, "archive-retry-base", 0, "initial retry backoff after a failed upload (0 = default 100ms)")
	fs.DurationVar(&c.archiveRetryMax, "archive-retry-max", 0, "retry backoff ceiling during a remote outage (0 = default 5s)")
	fs.DurationVar(&c.recoveryBudget, "recovery-budget", 0, "target crash-recovery replay time; checkpoints fire early to keep the estimated replay under it (0 = count-based checkpoints only)")
	fs.BoolVar(&c.checkpointCompress, "checkpoint-compress", false, "gzip checkpoint payloads on disk (CRC still covers the uncompressed snapshot)")
	fs.BoolVar(&c.restoreFromArchive, "restore-from-archive", false, "rebuild an empty -data-dir from the remote archive before serving; refused if local WAL state exists")
	fs.IntVar(&c.maxStreams, "max-streams", 0, "max named streams, live + evicted (0 = default 1024)")
	fs.IntVar(&c.writerPool, "writer-pool", 0, "shared ingest writer goroutines all streams multiplex over, round-robin (0 = GOMAXPROCS)")
	fs.Var(&c.memoryBudget, "memory-budget", "global resident-memory target for all live streams, e.g. 512MiB; least-recently-used idle streams are checkpointed to disk and evicted past it (0 = unlimited; requires -data-dir)")
	fs.DurationVar(&c.evictIdleAfter, "evict-idle-after", 0, "checkpoint + evict streams untouched this long (0 = never; requires -data-dir)")
	fs.DurationVar(&c.sweepInterval, "sweep-interval", 0, "eviction sweep cadence (0 = default 1s)")
}

// buildOptions maps the flags to library options. Validation happens
// in edmstream.New / server.New so their error messages stay the
// single source of truth.
func buildOptions(c cliConfig) edmstream.Options {
	return edmstream.Options{
		Radius:        c.radius,
		Rate:          c.rate,
		Beta:          c.beta,
		Tau:           c.tau,
		AdaptiveTau:   c.adaptiveTau,
		InitPoints:    c.initPoints,
		IngestWorkers: c.ingestWorkers,
		MaxEvents:     c.maxEvents,
	}
}

func buildServerConfig(c cliConfig) server.Config {
	return server.Config{
		Addr:            c.addr,
		CoalesceWindow:  c.coalesceWindow,
		MaxBatch:        c.maxBatch,
		MaxPending:      c.maxPending,
		LongPollTimeout: c.longPollTimeout,
		MaxBodyBytes:    c.maxBodyBytes,
		DataDir:         c.dataDir,
		WALSegmentBytes: c.walSegmentBytes,
		WALNoSync:       c.walNoSync,
		CheckpointEvery: c.checkpointEvery,

		ReadTimeout:           c.readTimeout,
		WriteTimeout:          c.writeTimeout,
		IdleTimeout:           c.idleTimeout,
		IngestDeadline:        c.ingestDeadline,
		MaxReadConcurrency:    c.readConcurrency,
		DegradedProbeInterval: c.probeInterval,
		WALRetryAttempts:      c.walRetryAttempts,

		ArchiveURL:         c.archiveURL,
		ArchiveQueue:       c.archiveQueue,
		ArchiveRetryBase:   c.archiveRetryBase,
		ArchiveRetryMax:    c.archiveRetryMax,
		RecoveryBudget:     c.recoveryBudget,
		CheckpointCompress: c.checkpointCompress,
		RestoreFromArchive: c.restoreFromArchive,

		MaxStreams:     c.maxStreams,
		WriterPool:     c.writerPool,
		MemoryBudget:   int64(c.memoryBudget),
		EvictIdleAfter: c.evictIdleAfter,
		SweepInterval:  c.sweepInterval,
		// Named streams clone the engine options the default stream was
		// built with: one daemon, one clustering geometry, many tenants.
		NewEngine: func() (*edmstream.Clusterer, error) {
			return edmstream.New(buildOptions(c))
		},
	}
}

func main() {
	var cfg cliConfig
	registerFlags(flag.CommandLine, &cfg)
	flag.Parse()

	if cfg.radius <= 0 {
		fmt.Fprintln(os.Stderr, "edmserved: -radius is required and must be positive")
		flag.Usage()
		os.Exit(2)
	}

	c, err := edmstream.New(buildOptions(cfg))
	if err != nil {
		log.Fatalf("edmserved: %v", err)
	}
	s, err := server.New(c, buildServerConfig(cfg))
	if err != nil {
		log.Fatalf("edmserved: %v", err)
	}
	if cfg.dataDir != "" {
		log.Printf("edmserved: %s (data dir %s)", s.RecoveryInfo(), cfg.dataDir)
	}
	if err := s.Start(); err != nil {
		log.Fatalf("edmserved: %v", err)
	}
	log.Printf("edmserved: serving on %s (radius %g, rate %g pt/s, coalesce window %v)",
		s.Addr(), cfg.radius, cfg.rate, cfg.coalesceWindow)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately

	log.Printf("edmserved: shutting down (grace %v)", cfg.shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownGrace)
	defer cancel()
	if err := s.Shutdown(shutdownCtx); err != nil {
		log.Printf("edmserved: shutdown: %v", err)
	}
	if err := s.Err(); err != nil {
		log.Fatalf("edmserved: serve error: %v", err)
	}
	log.Printf("edmserved: drained and stopped")
}
