package main

import (
	"flag"
	"testing"
	"time"
)

// TestFlagMapping pins the flag → Options / server.Config mapping:
// every knob lands in the right field and the resulting configs pass
// their own validation.
func TestFlagMapping(t *testing.T) {
	fs := flag.NewFlagSet("edmserved", flag.ContinueOnError)
	var cfg cliConfig
	registerFlags(fs, &cfg)
	err := fs.Parse([]string{
		"-addr", "127.0.0.1:9901",
		"-radius", "0.75",
		"-rate", "2000",
		"-tau", "1.5",
		"-adaptive-tau",
		"-init-points", "250",
		"-ingest-workers", "3",
		"-max-events", "10000",
		"-coalesce-window", "4ms",
		"-max-batch", "2048",
		"-max-pending", "64",
		"-longpoll-timeout", "12s",
		"-max-body", "1048576",
		"-shutdown-grace", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}

	opts := buildOptions(cfg)
	if opts.Radius != 0.75 || opts.Rate != 2000 || opts.Tau != 1.5 ||
		!opts.AdaptiveTau || opts.InitPoints != 250 || opts.IngestWorkers != 3 ||
		opts.MaxEvents != 10000 {
		t.Errorf("options mapping wrong: %+v", opts)
	}
	if err := opts.Validate(); err != nil {
		t.Errorf("mapped options invalid: %v", err)
	}

	sc := buildServerConfig(cfg)
	if sc.Addr != "127.0.0.1:9901" || sc.CoalesceWindow != 4*time.Millisecond ||
		sc.MaxBatch != 2048 || sc.MaxPending != 64 ||
		sc.LongPollTimeout != 12*time.Second || sc.MaxBodyBytes != 1<<20 {
		t.Errorf("server config mapping wrong: %+v", sc)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("mapped server config invalid: %v", err)
	}
	if cfg.shutdownGrace != 3*time.Second {
		t.Errorf("shutdown grace = %v, want 3s", cfg.shutdownGrace)
	}
}

// TestArchiveFlagMapping pins the archive / disaster-recovery knobs:
// each flag lands in its server.Config field and the combination
// validates (archive flags require -data-dir).
func TestArchiveFlagMapping(t *testing.T) {
	fs := flag.NewFlagSet("edmserved", flag.ContinueOnError)
	var cfg cliConfig
	registerFlags(fs, &cfg)
	err := fs.Parse([]string{
		"-data-dir", t.TempDir(),
		"-archive-url", "file:///tmp/edm-archive",
		"-archive-queue", "16",
		"-archive-retry-base", "50ms",
		"-archive-retry-max", "2s",
		"-recovery-budget", "30s",
		"-checkpoint-compress",
		"-restore-from-archive",
	})
	if err != nil {
		t.Fatal(err)
	}

	sc := buildServerConfig(cfg)
	if sc.ArchiveURL != "file:///tmp/edm-archive" || sc.ArchiveQueue != 16 ||
		sc.ArchiveRetryBase != 50*time.Millisecond || sc.ArchiveRetryMax != 2*time.Second ||
		sc.RecoveryBudget != 30*time.Second || !sc.CheckpointCompress || !sc.RestoreFromArchive {
		t.Errorf("archive config mapping wrong: %+v", sc)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("mapped archive config invalid: %v", err)
	}

	// The knobs are rejected without the archive itself: the flag
	// surface and server-side validation must agree.
	fs2 := flag.NewFlagSet("edmserved", flag.ContinueOnError)
	var cfg2 cliConfig
	registerFlags(fs2, &cfg2)
	if err := fs2.Parse([]string{"-data-dir", t.TempDir(), "-archive-queue", "16"}); err != nil {
		t.Fatal(err)
	}
	if err := buildServerConfig(cfg2).Validate(); err == nil {
		t.Error("archive-queue without -archive-url validated; want error")
	}
}

// TestFlagDefaults: the zero-flag parse produces the documented
// defaults (and an invalid radius, which main rejects explicitly).
func TestFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("edmserved", flag.ContinueOnError)
	var cfg cliConfig
	registerFlags(fs, &cfg)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:8080" || cfg.rate != 1000 ||
		cfg.coalesceWindow != 2*time.Millisecond ||
		cfg.longPollTimeout != 30*time.Second ||
		cfg.shutdownGrace != 15*time.Second {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.radius != 0 {
		t.Errorf("radius default = %g, want 0 (required flag)", cfg.radius)
	}
	if cfg.archiveURL != "" || cfg.archiveQueue != 0 || cfg.archiveRetryBase != 0 ||
		cfg.archiveRetryMax != 0 || cfg.recoveryBudget != 0 ||
		cfg.checkpointCompress || cfg.restoreFromArchive {
		t.Errorf("archive defaults wrong (want all zero/off): %+v", cfg)
	}
	if err := buildServerConfig(cfg).Validate(); err != nil {
		t.Errorf("default server config invalid: %v", err)
	}
}

// TestTenancyFlagMapping pins the multi-tenant knobs: each flag lands
// in its server.Config field, the engine factory is wired, and the
// combination validates (budget/idle eviction require -data-dir).
func TestTenancyFlagMapping(t *testing.T) {
	fs := flag.NewFlagSet("edmserved", flag.ContinueOnError)
	var cfg cliConfig
	registerFlags(fs, &cfg)
	err := fs.Parse([]string{
		"-radius", "0.5",
		"-data-dir", t.TempDir(),
		"-max-streams", "64",
		"-writer-pool", "4",
		"-memory-budget", "512MiB",
		"-evict-idle-after", "10m",
		"-sweep-interval", "250ms",
	})
	if err != nil {
		t.Fatal(err)
	}

	sc := buildServerConfig(cfg)
	if sc.MaxStreams != 64 || sc.WriterPool != 4 ||
		sc.MemoryBudget != 512<<20 ||
		sc.EvictIdleAfter != 10*time.Minute ||
		sc.SweepInterval != 250*time.Millisecond {
		t.Errorf("tenancy config mapping wrong: %+v", sc)
	}
	if sc.NewEngine == nil {
		t.Fatal("NewEngine factory not wired")
	}
	c, err := sc.NewEngine()
	if err != nil || c == nil {
		t.Fatalf("NewEngine() = %v, %v; want a clusterer built from the flags", c, err)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("mapped tenancy config invalid: %v", err)
	}

	// Budget and idle eviction need somewhere to checkpoint to: the
	// flag surface and server-side validation must agree.
	for _, args := range [][]string{
		{"-memory-budget", "512MiB"},
		{"-evict-idle-after", "10m"},
	} {
		fs2 := flag.NewFlagSet("edmserved", flag.ContinueOnError)
		var cfg2 cliConfig
		registerFlags(fs2, &cfg2)
		if err := fs2.Parse(args); err != nil {
			t.Fatal(err)
		}
		if err := buildServerConfig(cfg2).Validate(); err == nil {
			t.Errorf("%v without -data-dir validated; want error", args)
		}
	}

	// A budget below one engine's floor is rejected at parse-adjacent
	// validation, not discovered as eviction churn in production.
	fs3 := flag.NewFlagSet("edmserved", flag.ContinueOnError)
	var cfg3 cliConfig
	registerFlags(fs3, &cfg3)
	if err := fs3.Parse([]string{"-data-dir", t.TempDir(), "-memory-budget", "1024"}); err != nil {
		t.Fatal(err)
	}
	if err := buildServerConfig(cfg3).Validate(); err == nil {
		t.Error("sub-floor -memory-budget validated; want error")
	}
}

// TestParseSize pins the -memory-budget value syntax.
func TestParseSize(t *testing.T) {
	good := map[string]int64{
		"0":       0,
		"1048576": 1 << 20,
		"64KiB":   64 << 10,
		"512MiB":  512 << 20,
		"2GiB":    2 << 30,
		"2gib":    2 << 30,
		"128k":    128 << 10,
		"16M":     16 << 20,
		"1G":      1 << 30,
		"4096b":   4096,
		" 8 MiB ": 8 << 20,
	}
	for in, want := range good {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "MiB", "-1", "-4KiB", "1.5GiB", "9999999999GiB", "10TiB"} {
		if got, err := parseSize(in); err == nil {
			t.Errorf("parseSize(%q) = %d; want error", in, got)
		}
	}
}
