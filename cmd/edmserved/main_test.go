package main

import (
	"flag"
	"testing"
	"time"
)

// TestFlagMapping pins the flag → Options / server.Config mapping:
// every knob lands in the right field and the resulting configs pass
// their own validation.
func TestFlagMapping(t *testing.T) {
	fs := flag.NewFlagSet("edmserved", flag.ContinueOnError)
	var cfg cliConfig
	registerFlags(fs, &cfg)
	err := fs.Parse([]string{
		"-addr", "127.0.0.1:9901",
		"-radius", "0.75",
		"-rate", "2000",
		"-tau", "1.5",
		"-adaptive-tau",
		"-init-points", "250",
		"-ingest-workers", "3",
		"-max-events", "10000",
		"-coalesce-window", "4ms",
		"-max-batch", "2048",
		"-max-pending", "64",
		"-longpoll-timeout", "12s",
		"-max-body", "1048576",
		"-shutdown-grace", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}

	opts := buildOptions(cfg)
	if opts.Radius != 0.75 || opts.Rate != 2000 || opts.Tau != 1.5 ||
		!opts.AdaptiveTau || opts.InitPoints != 250 || opts.IngestWorkers != 3 ||
		opts.MaxEvents != 10000 {
		t.Errorf("options mapping wrong: %+v", opts)
	}
	if err := opts.Validate(); err != nil {
		t.Errorf("mapped options invalid: %v", err)
	}

	sc := buildServerConfig(cfg)
	if sc.Addr != "127.0.0.1:9901" || sc.CoalesceWindow != 4*time.Millisecond ||
		sc.MaxBatch != 2048 || sc.MaxPending != 64 ||
		sc.LongPollTimeout != 12*time.Second || sc.MaxBodyBytes != 1<<20 {
		t.Errorf("server config mapping wrong: %+v", sc)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("mapped server config invalid: %v", err)
	}
	if cfg.shutdownGrace != 3*time.Second {
		t.Errorf("shutdown grace = %v, want 3s", cfg.shutdownGrace)
	}
}

// TestFlagDefaults: the zero-flag parse produces the documented
// defaults (and an invalid radius, which main rejects explicitly).
func TestFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("edmserved", flag.ContinueOnError)
	var cfg cliConfig
	registerFlags(fs, &cfg)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:8080" || cfg.rate != 1000 ||
		cfg.coalesceWindow != 2*time.Millisecond ||
		cfg.longPollTimeout != 30*time.Second ||
		cfg.shutdownGrace != 15*time.Second {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.radius != 0 {
		t.Errorf("radius default = %g, want 0 (required flag)", cfg.radius)
	}
	if err := buildServerConfig(cfg).Validate(); err != nil {
		t.Errorf("default server config invalid: %v", err)
	}
}
