// Command edmstream clusters a numeric point stream read as CSV
// (columns: time, label, x1..xd — the layout cmd/datagen emits) and
// prints the resulting clusters and the cluster evolution log.
//
//	datagen -dataset sds | edmstream -radius 0.3
//	edmstream -radius 0.3 -adaptive -input sds.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	edmstream "github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/stream"
)

func main() {
	radius := flag.Float64("radius", 0, "cluster-cell radius r (0 = pick from the data via the 1% pairwise-distance quantile)")
	tau := flag.Float64("tau", 0, "static cluster-separation threshold (0 = choose from the decision graph)")
	adaptive := flag.Bool("adaptive", false, "re-tune tau dynamically as the stream evolves")
	rate := flag.Float64("rate", 1000, "expected arrival rate in points per second")
	input := flag.String("input", "-", "input CSV file (\"-\" for stdin)")
	showEvents := flag.Bool("events", true, "print the cluster evolution log")
	flag.Parse()

	if err := run(*radius, *tau, *adaptive, *rate, *input, *showEvents, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "edmstream: %v\n", err)
		os.Exit(1)
	}
}

func run(radius, tau float64, adaptive bool, rate float64, input string, showEvents bool, out io.Writer) error {
	var r io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	points, err := readPoints(r)
	if err != nil {
		return err
	}
	if len(points) == 0 {
		return fmt.Errorf("no points in the input")
	}
	if radius <= 0 {
		radius, err = edmstream.SuggestRadius(points, 0.01)
		if err != nil {
			return fmt.Errorf("choosing a radius: %w", err)
		}
		fmt.Fprintf(out, "chosen cluster-cell radius r = %.4g (1%% pairwise-distance quantile)\n", radius)
	}

	c, err := edmstream.New(edmstream.Options{
		Radius:      radius,
		Tau:         tau,
		AdaptiveTau: adaptive,
		Rate:        rate,
	})
	if err != nil {
		return err
	}
	for _, p := range points {
		if err := c.Insert(p); err != nil {
			return fmt.Errorf("point %d: %w", p.ID, err)
		}
	}

	snap := c.Snapshot()
	fmt.Fprintf(out, "processed %d points (stream time %.2fs), tau = %.4g\n", len(points), c.Now(), snap.Tau)
	fmt.Fprintf(out, "clusters: %d, active cells: %d, outlier cells: %d\n", snap.NumClusters(), snap.ActiveCells, snap.OutlierCells)
	for _, cl := range snap.Clusters {
		fmt.Fprintf(out, "  cluster %d: %d cells, weight %.1f, peak density %.1f\n", cl.ID, len(cl.CellIDs), cl.Weight, cl.PeakDensity)
	}
	if showEvents {
		fmt.Fprintln(out, "evolution log:")
		for _, e := range c.Events() {
			fmt.Fprintf(out, "  %s\n", e)
		}
	}
	st := c.Stats()
	fmt.Fprintf(out, "cells created: %d, promotions: %d, demotions: %d, deletions: %d\n",
		st.CellsCreated, st.Promotions, st.Demotions, st.Deletions)
	return nil
}

// readPoints parses the CSV stream into points using the shared layout
// (time, label, x1..xd).
func readPoints(r io.Reader) ([]edmstream.Point, error) {
	return stream.ReadCSV(bufio.NewReader(r))
}
