package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

// writeTestCSV writes a two-blob stream in the CLI's CSV layout and
// returns its path.
func writeTestCSV(t *testing.T, n int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := make([]stream.Point, n)
	for i := range pts {
		k := i % 2
		base := float64(k) * 10
		pts[i] = stream.Point{
			ID:     int64(i),
			Vector: []float64{base + rng.NormFloat64()*0.5, base + rng.NormFloat64()*0.5},
			Label:  k,
			Time:   float64(i) / 1000,
		}
	}
	path := filepath.Join(t.TempDir(), "stream.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.WriteCSV(f, pts); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunClustersCSVFile(t *testing.T) {
	path := writeTestCSV(t, 3000)
	var out bytes.Buffer
	if err := run(0.8, 3, false, 1000, path, true, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "clusters: 2") {
		t.Errorf("expected 2 clusters in output:\n%s", text)
	}
	if !strings.Contains(text, "evolution log:") {
		t.Errorf("expected evolution log in output:\n%s", text)
	}
}

func TestRunAutoRadius(t *testing.T) {
	path := writeTestCSV(t, 1500)
	var out bytes.Buffer
	// radius 0 asks the CLI to choose it from the data.
	if err := run(0, 0, true, 1000, path, false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chosen cluster-cell radius") {
		t.Errorf("expected auto-chosen radius message:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(1, 0, false, 1000, filepath.Join(t.TempDir(), "missing.csv"), false, &out); err == nil {
		t.Error("missing input file should fail")
	}
	// Empty file: no points.
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(1, 0, false, 1000, empty, false, &out); err == nil {
		t.Error("empty input should fail")
	}
}
