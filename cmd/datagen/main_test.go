package main

import (
	"bytes"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

func TestRunEmitsParsableCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run("sds", 500, 1, 1000, &out); err != nil {
		t.Fatal(err)
	}
	points, err := stream.ReadCSV(&out)
	if err != nil {
		t.Fatalf("datagen output is not parsable by the shared CSV reader: %v", err)
	}
	if len(points) != 500 {
		t.Fatalf("emitted %d points, want 500", len(points))
	}
	// Timestamps follow the requested rate.
	if got := points[499].Time; got < 0.498 || got > 0.5 {
		t.Errorf("last timestamp %v, want ~0.499 at 1000 pt/s", got)
	}
	for i, p := range points {
		if p.Dim() != 2 {
			t.Fatalf("point %d has dim %d, want 2 (SDS)", i, p.Dim())
		}
	}
}

func TestRunEveryDataset(t *testing.T) {
	for _, name := range []string{"sds", "hds-10", "kdd", "covertype", "pamap2"} {
		var out bytes.Buffer
		if err := run(name, 200, 2, 1000, &out); err != nil {
			t.Errorf("run(%q): %v", name, err)
			continue
		}
		points, err := stream.ReadCSV(&out)
		if err != nil || len(points) != 200 {
			t.Errorf("run(%q): bad CSV output (%d points, err %v)", name, len(points), err)
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run("no-such-dataset", 100, 1, 1000, &out); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run("sds", 100, 1, -1, &out); err == nil {
		t.Error("negative rate should fail")
	}
}
