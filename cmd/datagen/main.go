// Command datagen emits the synthetic datasets used by the evaluation
// as CSV on stdout (columns: time, label, x1..xd), stamped at the given
// arrival rate. It is the companion of cmd/edmstream, which consumes
// the same CSV layout.
//
//	datagen -dataset sds -n 20000 -rate 1000 > sds.csv
//
// Supported datasets: sds, hds-<dim>, kdd, covertype, pamap2.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/densitymountain/edmstream/internal/gen"
	"github.com/densitymountain/edmstream/internal/stream"
)

func main() {
	name := flag.String("dataset", "sds", "dataset to generate (sds, hds-<dim>, kdd, covertype, pamap2)")
	n := flag.Int("n", 20000, "number of points")
	seed := flag.Int64("seed", 1, "random seed")
	rate := flag.Float64("rate", 1000, "arrival rate in points per second (used to stamp timestamps)")
	flag.Parse()

	if err := run(*name, *n, *seed, *rate, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, n int, seed int64, rate float64, out io.Writer) error {
	ds, err := gen.ByName(name, n, seed)
	if err != nil {
		return err
	}
	src, err := ds.RateSource(rate)
	if err != nil {
		return err
	}
	points := stream.Collect(src, 0)
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintf(os.Stderr, "datagen: %s: %d points, %d dims, %d classes, suggested radius %.4g\n",
		ds.Name, ds.Len(), ds.Dim, ds.NumClasses, ds.SuggestedRadius)
	return stream.WriteCSV(w, points)
}
