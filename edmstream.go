// Package edmstream is the public API of this repository: a Go
// implementation of EDMStream, the density-mountain stream clustering
// algorithm of Gong, Zhang and Yu ("Clustering Stream Data by Exploring
// the Evolution of Density Mountain", VLDB 2017).
//
// EDMStream summarizes nearby stream points into cluster-cells, tracks
// the nearest-higher-density dependency between cells in a DP-Tree,
// keeps low-density cells in an outlier reservoir, and extracts
// clusters as the maximal strongly dependent subtrees of the DP-Tree.
// Because every structural change of the DP-Tree is observed, the
// clusterer can also report how clusters evolve over time (emerge,
// disappear, split, merge, adjust).
//
// # Quick start
//
//	c, err := edmstream.New(edmstream.Options{Radius: 0.5})
//	if err != nil { ... }
//	for p := range pointSource {
//	    if err := c.Insert(edmstream.NewPoint(p.Coords, p.Time)); err != nil { ... }
//	}
//	snap := c.Snapshot()
//	for _, cluster := range snap.Clusters {
//	    fmt.Println(cluster.ID, len(cluster.CellIDs))
//	}
//	for _, ev := range c.Events() {
//	    fmt.Println(ev)
//	}
//
// When points arrive in groups (network reads, log segments, bursty
// sources), feed them through InsertBatch instead of point-by-point
// Insert: it produces exactly the same clustering while amortizing the
// per-point bookkeeping across each batch and routing the batch's
// points to their nearest cells on a parallel worker pool
// (Options.IngestWorkers, default GOMAXPROCS) — the output is
// byte-identical for every worker count.
//
// # Serving queries while the stream flows
//
// The write path (Insert/InsertBatch) belongs to one owner goroutine,
// but the clusterer also maintains a lock-free read path: every
// clustering refresh atomically publishes an immutable snapshot, and
// LastSnapshot, Assign, AssignBatch, Events and Stats work off that
// published state from any number of goroutines, concurrently with
// ingestion, without blocking it. Assign classifies a point against
// the published clustering in sub-microsecond time with zero
// allocations:
//
//	go func() { // writer
//	    for batch := range source {
//	        c.InsertBatch(batch)
//	    }
//	}()
//	// any number of readers:
//	if id, ok := c.Assign(p); ok {
//	    serveFromCluster(id)
//	}
//
// The examples/ directory contains runnable programs: a minimal
// quickstart, cluster-evolution tracking on the SDS synthetic stream,
// the news-recommendation use case on a Jaccard text stream, and an
// intrusion-detection style workload.
package edmstream

import (
	"github.com/densitymountain/edmstream/internal/core"
	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/gen"
	"github.com/densitymountain/edmstream/internal/stream"
)

// Point is a single stream element: a numeric vector or a token set,
// plus an arrival timestamp in seconds and an optional ground-truth
// label used only for evaluation.
type Point = stream.Point

// NoLabel marks a point without ground-truth class information.
const NoLabel = stream.NoLabel

// TokenSet is a set of string tokens used by text streams (for
// example, news documents compared with the Jaccard distance).
type TokenSet = distance.TokenSet

// NewTokenSet builds a TokenSet from the given tokens.
func NewTokenSet(tokens ...string) TokenSet { return distance.NewTokenSet(tokens...) }

// Decay is the exponential freshness decay model f(t) = a^{λ(t−t_i)}.
type Decay = stream.Decay

// DefaultDecay returns the paper's nominal decay setting (a = 0.998,
// λ = 1).
func DefaultDecay() Decay { return stream.DefaultDecay() }

// Snapshot is an immutable view of the clustering at one point in time.
type Snapshot = core.Snapshot

// ClusterInfo describes one cluster within a Snapshot.
type ClusterInfo = core.ClusterInfo

// Event records one cluster evolution activity (emerge, disappear,
// split, merge, adjust).
type Event = core.Event

// EventKind is the type of a cluster evolution activity.
type EventKind = core.EventKind

// Cluster evolution activity kinds.
const (
	Emerge    = core.Emerge
	Disappear = core.Disappear
	Split     = core.Split
	Merge     = core.Merge
	Adjust    = core.Adjust
)

// DecisionPoint is one cluster-cell's (density, dependent distance)
// pair on the decision graph.
type DecisionPoint = core.DecisionPoint

// TauSelector chooses the initial cluster-separation threshold τ⁰ from
// a decision graph, standing in for the paper's interactive step.
type TauSelector = core.TauSelector

// FilterMode selects which dependency-update filters are enabled.
type FilterMode = core.FilterMode

// Filter modes.
const (
	FilterNone     = core.FilterNone
	FilterDensity  = core.FilterDensity
	FilterTriangle = core.FilterTriangle
	FilterAll      = core.FilterAll
)

// IndexPolicy selects the nearest-seed index for the per-point hot
// path (grid vs linear scan). Every policy produces identical
// clustering output.
type IndexPolicy = core.IndexPolicy

// Index policies.
const (
	// IndexAuto picks the grid index for low-dimensional Euclidean
	// streams and the linear scan otherwise. The default.
	IndexAuto = core.IndexAuto
	// IndexGrid forces the grid index for numeric streams.
	IndexGrid = core.IndexGrid
	// IndexLinear forces the linear scan.
	IndexLinear = core.IndexLinear
)

// Stats exposes the clusterer's internal counters.
type Stats = core.Stats

// NewPoint builds a numeric stream point arriving at the given time (in
// seconds).
func NewPoint(vector []float64, at float64) Point {
	return Point{Vector: vector, Time: at, Label: NoLabel}
}

// NewLabeledPoint builds a numeric stream point with a ground-truth
// label, used when evaluating cluster quality.
func NewLabeledPoint(vector []float64, at float64, label int) Point {
	return Point{Vector: vector, Time: at, Label: label}
}

// NewTextPoint builds a text stream point (a token set) arriving at the
// given time.
func NewTextPoint(tokens TokenSet, at float64) Point {
	return Point{Tokens: tokens, Time: at, Label: NoLabel}
}

// SuggestRadius returns the q-quantile (e.g. 0.01 for 1%) of the
// pairwise distances of a sample of points — the rule the paper uses to
// choose the cluster-cell radius r.
func SuggestRadius(points []Point, q float64) (float64, error) {
	return gen.SuggestRadius(points, q, 0)
}
