// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation section (Sec. 6). Each benchmark drives the same
// runner that cmd/edmbench uses (internal/bench) at a reduced scale so
// that `go test -bench=. -benchmem` regenerates every experiment in a
// few minutes; run `edmbench <id> -points <n>` for larger workloads.
// Reported custom metrics:
//
//	resp_us/update   mean response time of a cluster-update request (µs)
//	pts/sec          throughput
//	cmm              mean CMM cluster quality
//
// EXPERIMENTS.md records the paper-vs-measured comparison for each ID.
//
// The file lives in the external test package: internal/bench now
// imports the root package (its e2e experiment drives the public API
// through the network layer), so an in-package test importing
// internal/bench would be an import cycle.
package edmstream_test

import (
	"fmt"
	"testing"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/bench"
	"github.com/densitymountain/edmstream/internal/gen"
)

// benchScale is the workload size used by the benchmarks. Every phase
// of the algorithms (initialization, promotion, decay, deletion,
// evolution) occurs well within this length.
func benchScale() bench.Scale { return bench.Scale{Points: 12000, Seed: 1, Rate: 1000} }

func reportResult(b *testing.B, r bench.Result) {
	b.Helper()
	b.ReportMetric(float64(r.MeanResponseTime.Microseconds()), "resp_us/update")
	b.ReportMetric(r.MeanThroughput, "pts/sec")
	if r.MeanCMM > 0 {
		b.ReportMetric(r.MeanCMM, "cmm")
	}
}

// BenchmarkTable2Datasets regenerates the dataset inventory (Table 2).
func BenchmarkTable2Datasets(b *testing.B) {
	s := benchScale()
	s.Points = 4000
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable2(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("expected 7 datasets, got %d", len(rows))
		}
	}
}

// BenchmarkFig6Snapshots regenerates the SDS snapshot sequence (Fig. 6).
func BenchmarkFig6Snapshots(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		snaps, err := bench.RunFig6(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(snaps) != 6 {
			b.Fatalf("expected 6 snapshots, got %d", len(snaps))
		}
	}
}

// BenchmarkFig7Evolution regenerates the SDS evolution timeline (Fig. 7).
func BenchmarkFig7Evolution(b *testing.B) {
	s := benchScale()
	var events int
	for i := 0; i < b.N; i++ {
		ev, _, err := bench.RunFig7(s)
		if err != nil {
			b.Fatal(err)
		}
		events = len(ev)
	}
	b.ReportMetric(float64(events), "events")
}

// BenchmarkFig8News regenerates the news-stream use case (Fig. 8 /
// Table 3).
func BenchmarkFig8News(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.FinalClusters) == 0 {
			b.Fatal("no news clusters")
		}
	}
}

// benchmarkComparison backs the Fig. 9 (response time), Fig. 10
// (throughput) and Fig. 13 (CMM) benchmarks: one sub-benchmark per
// algorithm and dataset.
func benchmarkComparison(b *testing.B, computeCMM bool) {
	s := benchScale()
	if computeCMM {
		s.Points = 6000 // CMM evaluation is the dominant cost
	}
	for _, name := range bench.ComparisonDatasets() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := bench.RunComparison(name, s, computeCMM)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					for _, r := range results {
						b.Run(r.Algorithm, func(sb *testing.B) {
							// Report-only sub-benchmark: attach the measured
							// metrics of the shared run to a named entry.
							for j := 0; j < sb.N; j++ {
							}
							reportResult(sb, r)
						})
					}
				}
			}
		})
	}
}

// BenchmarkFig9ResponseTime regenerates the response-time comparison
// (Fig. 9 a–c).
func BenchmarkFig9ResponseTime(b *testing.B) { benchmarkComparison(b, false) }

// BenchmarkFig10Throughput regenerates the throughput comparison
// (Fig. 10 a–c). It shares the measurement path with Fig. 9; the
// throughput metric is reported per algorithm.
func BenchmarkFig10Throughput(b *testing.B) { benchmarkComparison(b, false) }

// BenchmarkFig13CMM regenerates the cluster-quality comparison
// (Fig. 13 a–c).
func BenchmarkFig13CMM(b *testing.B) { benchmarkComparison(b, true) }

// BenchmarkFig11Filters regenerates the filtering-strategy comparison
// (Fig. 11 a–c): accumulated dependency-update time for wf, df and
// df+tif.
func BenchmarkFig11Filters(b *testing.B) {
	s := benchScale()
	for _, name := range bench.ComparisonDatasets() {
		b.Run(name, func(b *testing.B) {
			var results []bench.FilterResult
			for i := 0; i < b.N; i++ {
				var err error
				results, err = bench.RunFig11(name, s)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range results {
				b.ReportMetric(float64(r.Accumulated.Milliseconds()), fmt.Sprintf("%s_ms", r.Mode))
			}
		})
	}
}

// BenchmarkFig12Dimensions regenerates the dimensionality sweep
// (Fig. 12). The benchmark uses 10–100 dimensions; pass -points to
// edmbench for the 300-D and 1000-D runs.
func BenchmarkFig12Dimensions(b *testing.B) {
	s := benchScale()
	s.Points = 4000
	for i := 0; i < b.N; i++ {
		results, err := bench.RunFig12([]int{10, 30, 100}, s)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, dr := range results {
				for _, r := range dr.Results {
					if r.Algorithm == "EDMStream" {
						b.ReportMetric(float64(r.MeanResponseTime.Microseconds()), fmt.Sprintf("edm_%dd_us", dr.Dim))
					}
				}
			}
		}
	}
}

// BenchmarkFig14StreamRates regenerates the quality-vs-rate experiment
// (Fig. 14).
func BenchmarkFig14StreamRates(b *testing.B) {
	s := benchScale()
	s.Points = 6000
	for i := 0; i < b.N; i++ {
		results, err := bench.RunFig14([]float64{1000, 5000, 10000}, s)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Result.MeanCMM, fmt.Sprintf("cmm_%.0fps", r.Rate))
			}
		}
	}
}

// BenchmarkFig15Table4AdaptiveTau regenerates the dynamic-vs-static τ
// comparison (Fig. 15 / Table 4).
func BenchmarkFig15Table4AdaptiveTau(b *testing.B) {
	s := benchScale()
	var tc bench.TauComparison
	for i := 0; i < b.N; i++ {
		var err error
		tc, err = bench.RunTable4(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	diverged := 0
	for i := range tc.Seconds {
		if tc.DynamicClusters[i] != tc.StaticClusters[i] {
			diverged++
		}
	}
	b.ReportMetric(float64(diverged), "seconds_diverged")
}

// BenchmarkFig16Reservoir regenerates the outlier-reservoir experiment
// (Fig. 16 a–b).
func BenchmarkFig16Reservoir(b *testing.B) {
	s := benchScale()
	s.Points = 6000
	for _, name := range []string{"covertype", "pamap2"} {
		b.Run(name, func(b *testing.B) {
			var results []bench.ReservoirResult
			for i := 0; i < b.N; i++ {
				var err error
				results, err = bench.RunFig16(name, []float64{1000, 5000, 10000}, s)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range results {
				b.ReportMetric(float64(r.MaxSize), fmt.Sprintf("max_%.0fps", r.Rate))
				b.ReportMetric(r.Bound, fmt.Sprintf("bound_%.0fps", r.Rate))
			}
		})
	}
}

// BenchmarkFig17Radius regenerates the cluster-cell radius sweep
// (Fig. 17 a–b).
func BenchmarkFig17Radius(b *testing.B) {
	s := benchScale()
	s.Points = 5000
	var results []bench.RadiusResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = bench.RunFig17(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.MeanCMM, fmt.Sprintf("cmm_r%.1f%%", r.Quantile*100))
		b.ReportMetric(float64(r.MeanResponse.Microseconds()), fmt.Sprintf("us_r%.1f%%", r.Quantile*100))
	}
}

// BenchmarkAblation runs the extra design-choice studies listed in
// DESIGN.md (adaptive vs static τ under drift, cell granularity).
func BenchmarkAblation(b *testing.B) {
	s := benchScale()
	s.Points = 4000
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblation(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexNearestSeed measures the indexed-vs-linear nearest-seed
// hot path (not in the paper): insert throughput with the grid index
// and with the linear scan on a 2-D stream holding >1000 simultaneously
// active cluster-cells. The grid is expected to win by >=2x in this
// regime; the exact ratio is reported as the speedup metric.
func BenchmarkIndexNearestSeed(b *testing.B) {
	s := benchScale()
	var results []bench.IndexBenchResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = bench.RunIndexBench(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.InsertsPerSec, fmt.Sprintf("%s_pts/sec", r.IndexKind))
		b.ReportMetric(float64(r.ActiveCells), fmt.Sprintf("%s_active", r.IndexKind))
	}
	b.ReportMetric(bench.IndexSpeedup(results), "speedup")
}

// benchmarkIngestMode drives the bursty 2-D lattice throughput
// workload through the public API in the given batch size (1 = plain
// Insert) and route-phase worker count (1 = fully single-threaded, 0 =
// GOMAXPROCS). One op is one point, so with -benchmem the allocs/op
// column is allocations per ingested point.
func benchmarkIngestMode(b *testing.B, batchSize, workers int) {
	const rate = 1000.0
	warmup := 16000
	pts := bench.ThroughputStream(warmup+200000, 1, rate)
	opts := edmstream.Options{
		Radius: 1.0, Rate: rate, Decay: edmstream.Decay{A: 0.99995, Lambda: rate},
		Beta: 1e-4, Tau: 6.0, InitPoints: 500,
		IndexPolicy: edmstream.IndexGrid, EvolutionInterval: -1,
		IngestWorkers: workers,
	}
	c, err := edmstream.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < warmup; i++ {
		if err := c.Insert(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
	measured := pts[warmup:]
	nextTime := measured[len(measured)-1].Time
	batch := make([]edmstream.Point, 0, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := measured[i%len(measured)]
		nextTime += 1 / rate
		p.Time = nextTime
		if batchSize <= 1 {
			if err := c.Insert(p); err != nil {
				b.Fatal(err)
			}
			continue
		}
		batch = append(batch, p)
		if len(batch) == batchSize || i == b.N-1 {
			if err := c.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
}

// BenchmarkInsertBatch compares batched ingestion against per-point
// ingestion on the bursty 2-D lattice workload (≈1600 simultaneously
// active cells). The per-point and batch-256 sub-benchmarks measure
// steady-state cost per point through the public API; the comparison
// sub-benchmark runs the paired experiment behind `edmbench
// throughput` and reports both modes' throughput plus the speedup.
func BenchmarkInsertBatch(b *testing.B) {
	b.Run("per-point", func(b *testing.B) { benchmarkIngestMode(b, 1, 1) })
	b.Run("batch-256", func(b *testing.B) { benchmarkIngestMode(b, bench.ThroughputBatchSize, 1) })
	// The parallel mode routes each batch on a GOMAXPROCS-sized worker
	// pool before the serial apply phase; on a single-CPU machine it
	// degrades to the batch-256 path (the pool needs ≥ 2 workers).
	b.Run("batch-256-parallel", func(b *testing.B) { benchmarkIngestMode(b, bench.ThroughputBatchSize, 0) })
	b.Run("comparison", func(b *testing.B) {
		s := benchScale()
		var rep bench.ThroughputReport
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = bench.RunThroughput(s)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rep.PerPoint.PointsPerSec, "perpoint_pts/sec")
		b.ReportMetric(rep.Batch.PointsPerSec, "batch_pts/sec")
		b.ReportMetric(rep.Batch.AllocsPerPoint, "batch_allocs/pt")
		b.ReportMetric(rep.Speedup, "speedup")
	})
}

// BenchmarkInsert measures the raw per-point insertion cost of
// EDMStream (the quantity behind the paper's "7–23 µs per update"
// claim), on the KDD-like workload.
func BenchmarkInsert(b *testing.B) {
	s := benchScale()
	ds, err := gen.ByName("kdd", s.Points, s.Seed)
	if err != nil {
		b.Fatal(err)
	}
	edm, err := bench.NewEDMStream(ds.SuggestedRadius, s.Rate, false)
	if err != nil {
		b.Fatal(err)
	}
	src, err := ds.RateSource(s.Rate)
	if err != nil {
		b.Fatal(err)
	}
	points := make([]edmstream.Point, 0, ds.Len())
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		points = append(points, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := points[i%len(points)]
		p.Time = float64(i) / s.Rate
		if err := edm.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot measures the cost of a cluster-update request
// against a populated DP-Tree.
func BenchmarkSnapshot(b *testing.B) {
	s := benchScale()
	ds, err := gen.ByName("kdd", s.Points, s.Seed)
	if err != nil {
		b.Fatal(err)
	}
	edm, err := bench.NewEDMStream(ds.SuggestedRadius, s.Rate, false)
	if err != nil {
		b.Fatal(err)
	}
	src, err := ds.RateSource(s.Rate)
	if err != nil {
		b.Fatal(err)
	}
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		if err := edm.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := edm.Snapshot(); snap.ActiveCells == 0 {
			b.Fatal("no active cells in snapshot")
		}
	}
}
