package edmstream_test

import (
	"fmt"
	"math/rand"

	edmstream "github.com/densitymountain/edmstream"
)

// Example demonstrates the basic EDMStream workflow: create a
// clusterer, feed a stream of timestamped points, and read back the
// clustering and the evolution log.
func Example() {
	c, err := edmstream.New(edmstream.Options{
		Radius: 0.8, // cluster-cell radius
		Tau:    3,   // dependency links longer than τ separate clusters
		Rate:   1000,
	})
	if err != nil {
		panic(err)
	}

	// Two well separated Gaussian blobs arriving at 1,000 points/second.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		var x, y float64
		if i%2 == 0 {
			x, y = 0, 0
		} else {
			x, y = 10, 10
		}
		p := edmstream.NewPoint(
			[]float64{x + rng.NormFloat64()*0.5, y + rng.NormFloat64()*0.5},
			float64(i)/1000,
		)
		if err := c.Insert(p); err != nil {
			panic(err)
		}
	}

	snap := c.Snapshot()
	fmt.Println("clusters:", snap.NumClusters())
	// Output:
	// clusters: 2
}

// Example_textStream clusters a stream of token sets (documents) with
// the Jaccard distance, the setup used by the news-recommendation use
// case.
func Example_textStream() {
	c, err := edmstream.New(edmstream.Options{Radius: 0.4, Tau: 0.8, Rate: 1000})
	if err != nil {
		panic(err)
	}
	topics := [][]string{
		{"google", "android", "wearable"},
		{"apple", "iphone", "patent"},
	}
	for i := 0; i < 2000; i++ {
		tokens := edmstream.NewTokenSet(topics[i%2]...)
		if err := c.Insert(edmstream.NewTextPoint(tokens, float64(i)/1000)); err != nil {
			panic(err)
		}
	}
	fmt.Println("topic clusters:", c.Snapshot().NumClusters())
	// Output:
	// topic clusters: 2
}
