// News recommendation use case (the paper's Sec. 6.2.2 / Fig. 8 /
// Table 3): a stream of short news documents is clustered online with
// the Jaccard distance over term sets. Topic clusters carry tags (their
// most frequent terms); the evolution log shows topics merging and
// splitting as their popularity shifts, and the final clusters are used
// to recommend related articles for a visited document.
//
//	go run ./examples/news_recommendation
package main

import (
	"fmt"
	"log"
	"sort"

	edmstream "github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/text"
)

func main() {
	const (
		documents = 30000
		rate      = 1000.0
	)
	docs, topics, err := text.NewsStream(text.NewsConfig{N: documents, Seed: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scripted topic schedule (ground truth):")
	for _, e := range text.NewsEvents() {
		fmt.Printf("  %-6s at t=%.1fs: %v\n", e.Kind, e.Fraction*documents/rate, e.Topics)
	}

	c, err := edmstream.New(edmstream.Options{
		Radius:            0.4, // Jaccard distance: documents sharing >60% of terms join a cell
		Tau:               0.75,
		Rate:              rate,
		EvolutionInterval: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range docs {
		d.Time = float64(i) / rate
		if err := c.Insert(d); err != nil {
			log.Fatal(err)
		}
	}

	snap := c.Snapshot()
	fmt.Printf("\n%d topic clusters at the end of the stream:\n", snap.NumClusters())
	tagsByCluster := map[int][]string{}
	for _, cl := range snap.Clusters {
		tags := topTags(cl, 3)
		tagsByCluster[cl.ID] = tags
		fmt.Printf("  cluster %d (%d cells): %v\n", cl.ID, len(cl.CellIDs), tags)
	}

	fmt.Println("\ntopic evolution (merges and splits):")
	for _, e := range c.Events() {
		if e.Kind == edmstream.Merge || e.Kind == edmstream.Split {
			fmt.Printf("  %s\n", e)
		}
	}

	// Recommendation: a user read a smartwatch article; recommend the
	// tags of the cluster whose cells are nearest to it.
	visited := edmstream.NewTextPoint(edmstream.NewTokenSet("google", "smartwatch", "android", "wear", "launch"), snap.Time)
	bestCluster, bestDist := -1, 2.0
	for _, cl := range snap.Clusters {
		for _, seed := range cl.SeedPoints {
			if d := visited.Distance(seed); d < bestDist {
				bestDist = d
				bestCluster = cl.ID
			}
		}
	}
	if bestCluster >= 0 {
		fmt.Printf("\nuser visited a smartwatch article -> recommend more from cluster %d %v (distance %.2f)\n",
			bestCluster, tagsByCluster[bestCluster], bestDist)
	} else {
		fmt.Println("\nno cluster close enough to the visited article for a recommendation")
	}
	_ = topics
}

// topTags returns the most frequent tokens among a cluster's cell
// seeds — the cluster's topic tags, as shown in Fig. 8.
func topTags(cl edmstream.ClusterInfo, n int) []string {
	counts := map[string]int{}
	for _, seed := range cl.SeedPoints {
		for tok := range seed.Tokens {
			counts[tok]++
		}
	}
	type tc struct {
		tok string
		n   int
	}
	var all []tc
	for tok, cnt := range counts {
		all = append(all, tc{tok, cnt})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].tok < all[j].tok
	})
	tags := make([]string, 0, n)
	for i := 0; i < len(all) && i < n; i++ {
		tags = append(tags, all[i].tok)
	}
	return tags
}
