// Quickstart: cluster a simple two-blob stream with EDMStream and print
// the clusters, the decision graph and the evolution log.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	edmstream "github.com/densitymountain/edmstream"
)

func main() {
	// Build the clusterer. Radius is the only required option: points
	// within this distance of a cluster-cell's seed are summarized by
	// that cell.
	c, err := edmstream.New(edmstream.Options{
		Radius:      0.8,
		AdaptiveTau: true, // let the algorithm pick and re-tune τ
		Rate:        1000, // expected arrival rate (points/second)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feed a stream: two Gaussian blobs, one of which drifts away in
	// the second half of the stream.
	rng := rand.New(rand.NewSource(42))
	const n = 8000
	for i := 0; i < n; i++ {
		t := float64(i) / 1000 // seconds
		var x, y float64
		if i%2 == 0 {
			x, y = 0, 0
		} else {
			// The second blob drifts to the right over time.
			x, y = 6+4*t/8, 0
		}
		p := edmstream.NewPoint([]float64{x + rng.NormFloat64()*0.5, y + rng.NormFloat64()*0.5}, t)
		if err := c.Insert(p); err != nil {
			log.Fatal(err)
		}
	}

	// Query the clustering.
	snap := c.Snapshot()
	fmt.Printf("stream time %.1fs, τ = %.3g, %d clusters over %d active cells (%d outlier cells)\n",
		snap.Time, snap.Tau, snap.NumClusters(), snap.ActiveCells, snap.OutlierCells)
	for _, cl := range snap.Clusters {
		fmt.Printf("  cluster %d: %d cells, weight %.1f\n", cl.ID, len(cl.CellIDs), cl.Weight)
	}

	// The decision graph is the (density, dependent distance) scatter
	// the paper uses to pick τ: density peaks are the entries with
	// anomalously large δ.
	graph := c.DecisionGraph()
	sort.Slice(graph, func(i, j int) bool { return graph[i].Delta > graph[j].Delta })
	fmt.Println("top of the decision graph (ρ, δ):")
	for i := 0; i < len(graph) && i < 5; i++ {
		fmt.Printf("  cell %d: ρ=%.1f δ=%.3g\n", graph[i].CellID, graph[i].Rho, graph[i].Delta)
	}

	// The evolution log shows how clusters emerged, merged, split,
	// adjusted or disappeared while the stream was processed.
	fmt.Println("evolution log:")
	for _, e := range c.Events() {
		fmt.Printf("  %s\n", e)
	}
}
