// Evolution tracking on the SDS synthetic stream (the paper's Fig. 6 /
// Fig. 7 scenario): two clusters approach and merge, a new cluster
// emerges, the old one disappears, and the new one splits in two. The
// program prints the scripted ground-truth schedule, the per-second
// cluster counts, and the evolution activities EDMStream detects.
//
//	go run ./examples/evolution_tracking
package main

import (
	"fmt"
	"log"

	edmstream "github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/gen"
)

func main() {
	const (
		points = 20000
		rate   = 1000.0
	)
	ds, err := gen.SDS(gen.SDSConfig{N: points, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scripted evolution schedule (ground truth):")
	for _, e := range gen.SDSEvents() {
		fmt.Printf("  %-10s at t=%.1fs\n", e.Kind, e.Fraction*points/rate)
	}

	c, err := edmstream.New(edmstream.Options{
		Radius:            ds.SuggestedRadius,
		Tau:               2.0,
		Rate:              rate,
		EvolutionInterval: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	src, err := ds.RateSource(rate)
	if err != nil {
		log.Fatal(err)
	}
	nextReport := 1.0
	fmt.Println("\nper-second cluster counts:")
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		if err := c.Insert(p); err != nil {
			log.Fatal(err)
		}
		if p.Time >= nextReport {
			snap := c.Snapshot()
			fmt.Printf("  t=%4.0fs clusters=%d active-cells=%d outlier-cells=%d\n",
				nextReport, snap.NumClusters(), snap.ActiveCells, snap.OutlierCells)
			nextReport++
		}
	}

	fmt.Println("\ndetected evolution activities:")
	for _, e := range c.Events() {
		switch e.Kind {
		case edmstream.Adjust:
			// Adjust events are frequent and not part of Fig. 7; skip
			// them in the printed timeline.
		default:
			fmt.Printf("  %s\n", e)
		}
	}
}
