// Intrusion detection workload: EDMStream clusters a KDDCUP99-like
// network connection stream (bursty attack classes, heavy class skew)
// and is compared against DenStream on cluster quality (CMM), cluster
// update response time and throughput — a miniature of the paper's
// Figs. 9, 10 and 13 on a single dataset.
//
//	go run ./examples/intrusion_detection
package main

import (
	"fmt"
	"log"

	"github.com/densitymountain/edmstream/internal/bench"
	"github.com/densitymountain/edmstream/internal/denstream"
	"github.com/densitymountain/edmstream/internal/gen"
)

func main() {
	const (
		points = 30000
		rate   = 1000.0
	)
	ds, err := gen.KDDLike(gen.RealLikeConfig{N: points, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, %d points, %d dims, %d classes, cluster-cell radius %.3g\n\n",
		ds.Name, ds.Len(), ds.Dim, ds.NumClasses, ds.SuggestedRadius)

	edm, err := bench.NewEDMStream(ds.SuggestedRadius, rate, false)
	if err != nil {
		log.Fatal(err)
	}
	den, err := denstream.New(denstream.Config{Eps: ds.SuggestedRadius, Mu: 5})
	if err != nil {
		log.Fatal(err)
	}

	cfg := bench.RunConfig{Rate: rate, ComputeCMM: true}
	for _, algo := range []struct {
		name string
		run  func() (bench.Result, error)
	}{
		{"EDMStream", func() (bench.Result, error) { return bench.RunStream(edm, ds, cfg) }},
		{"DenStream", func() (bench.Result, error) { return bench.RunStream(den, ds, cfg) }},
	} {
		res, err := algo.run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  clusters=%-3d  mean CMM=%.3f  response time per cluster update=%v  throughput=%.0f pt/s\n",
			algo.name, res.FinalClusters, res.MeanCMM, res.MeanResponseTime, res.MeanThroughput)
	}

	// Show which attack bursts EDMStream noticed as cluster evolution.
	fmt.Println("\nEDMStream evolution log (new attack clusters emerging / fading):")
	shown := 0
	for _, e := range edm.Events() {
		if e.Kind == "emerge" || e.Kind == "disappear" {
			fmt.Printf("  %s\n", e)
			shown++
			if shown >= 15 {
				fmt.Println("  ...")
				break
			}
		}
	}
}
