package edmstream

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	c, err := New(Options{Radius: 0.8, Tau: 3, InitPoints: 200})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0, 0}, {10, 10}}
	for i := 0; i < 4000; i++ {
		k := i % 2
		p := NewLabeledPoint(
			[]float64{centers[k][0] + rng.NormFloat64()*0.5, centers[k][1] + rng.NormFloat64()*0.5},
			float64(i)/1000, k)
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if snap.NumClusters() != 2 {
		t.Fatalf("got %d clusters, want 2", snap.NumClusters())
	}
	if c.Now() < 3.9 {
		t.Errorf("Now = %v", c.Now())
	}
	if c.Tau() != 3 {
		t.Errorf("Tau = %v, want the static 3", c.Tau())
	}
	if len(c.DecisionGraph()) == 0 {
		t.Error("empty decision graph")
	}
	if c.Stats().Points != 4000 {
		t.Errorf("Stats.Points = %d", c.Stats().Points)
	}
	if c.ReservoirBound() <= 0 {
		t.Error("ReservoirBound should be positive")
	}
	if got := c.LastSnapshot().NumClusters(); got != snap.NumClusters() {
		t.Errorf("LastSnapshot clusters = %d, want %d", got, snap.NumClusters())
	}
	if len(c.Events()) == 0 {
		t.Error("no evolution events recorded")
	}
	if !(c.Alpha() >= 0 && c.Alpha() < 1) {
		t.Errorf("Alpha = %v", c.Alpha())
	}
}

// TestPublicServing exercises the read path of the public API: Assign
// and AssignBatch classify points against the published snapshot, and
// the reader-safe methods can be hammered from several goroutines
// while a writer ingests (run under -race by the CI race job).
func TestPublicServing(t *testing.T) {
	c, err := New(Options{Radius: 0.8, Tau: 3, InitPoints: 200})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	centers := [][]float64{{0, 0}, {10, 10}}
	mk := func(i int) Point {
		k := i % 2
		return NewPoint([]float64{
			centers[k][0] + rng.NormFloat64()*0.5,
			centers[k][1] + rng.NormFloat64()*0.5,
		}, float64(i)/1000)
	}
	// Before any snapshot is published, Assign reports no cluster.
	if _, ok := c.Assign(NewPoint([]float64{0, 0}, 0)); ok {
		t.Error("Assign matched before any snapshot was published")
	}

	var pts []Point
	for i := 0; i < 4000; i++ {
		pts = append(pts, mk(i))
	}
	const split = 2000
	if err := c.InsertBatch(pts[:split]); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.NumClusters() != 2 {
		t.Fatalf("got %d clusters, want 2", snap.NumClusters())
	}

	// Readers hammer the serving methods while the writer finishes the
	// stream.
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var dst []int
			for i := 0; ; i++ {
				if i >= 200 {
					select {
					case <-done:
						return
					default:
					}
				}
				c.Assign(pts[(r*31+i)%split])
				dst = c.AssignBatch(pts[:4], dst)
				_ = c.LastSnapshot()
				_ = c.Stats()
				_ = c.Events()
			}
		}(r)
	}
	if err := c.InsertBatch(pts[split:]); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	// On-cluster points resolve to the cluster of their center; a far
	// point is an outlier.
	snap = c.Snapshot()
	wantA, okA := c.Assign(NewPoint(centers[0], c.Now()))
	wantB, okB := c.Assign(NewPoint(centers[1], c.Now()))
	if !okA || !okB || wantA == wantB {
		t.Fatalf("center assignment broken: (%d,%v) (%d,%v)", wantA, okA, wantB, okB)
	}
	if _, ok := snap.Cluster(wantA); !ok {
		t.Errorf("Assign returned cluster %d not present in the snapshot", wantA)
	}
	if _, ok := c.Assign(NewPoint([]float64{500, 500}, c.Now())); ok {
		t.Error("far-away point was assigned")
	}
	ids := c.AssignBatch([]Point{NewPoint(centers[0], c.Now()), NewPoint([]float64{500, 500}, c.Now())}, nil)
	if len(ids) != 2 || ids[0] != wantA || ids[1] != AssignOutlier {
		t.Errorf("AssignBatch = %v, want [%d %d]", ids, wantA, AssignOutlier)
	}
}

func TestPublicOptionsValidation(t *testing.T) {
	if err := (Options{Radius: 1}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	if err := (Options{}).Validate(); err == nil {
		t.Error("missing radius should be rejected")
	}
	if _, err := New(Options{Radius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
	// Filter plumbing: DisableFilters produces a working clusterer.
	c, err := New(Options{Radius: 1, DisableFilters: true, Tau: 2, InitPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := c.Insert(NewPoint([]float64{float64(i % 5), 0}, float64(i)/1000)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().FilteredByDensity != 0 || c.Stats().FilteredByTriangle != 0 {
		t.Error("DisableFilters did not disable the filters")
	}
	// Explicit filter selection is honored.
	c2, err := New(Options{Radius: 1, Filters: FilterDensity, Tau: 2, InitPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := c2.Insert(NewPoint([]float64{float64(i % 5), 0}, float64(i)/1000)); err != nil {
			t.Fatal(err)
		}
	}
	if c2.Stats().FilteredByTriangle != 0 {
		t.Error("triangle filter fired although only the density filter was selected")
	}
	// Negative EvolutionInterval disables automatic tracking.
	if err := (Options{Radius: 1, EvolutionInterval: -1}).Validate(); err != nil {
		t.Errorf("negative EvolutionInterval should mean disabled, got error: %v", err)
	}
}

// TestPublicIngestWorkersValidation is the table test for the
// IngestWorkers knob: zero means "GOMAXPROCS" and every non-negative
// count is accepted, while negative counts fail validation.
func TestPublicIngestWorkersValidation(t *testing.T) {
	tests := []struct {
		name    string
		workers int
		wantErr bool
	}{
		{"default-gomaxprocs", 0, false},
		{"single-threaded", 1, false},
		{"explicit-pool", 4, false},
		{"oversubscribed", 64, false},
		{"negative", -1, true},
		{"very-negative", -8, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			opts := Options{Radius: 1, IngestWorkers: tt.workers}
			err := opts.Validate()
			if tt.wantErr && err == nil {
				t.Fatalf("IngestWorkers=%d accepted, want validation error", tt.workers)
			}
			if !tt.wantErr && err != nil {
				t.Fatalf("IngestWorkers=%d rejected: %v", tt.workers, err)
			}
			if _, err := New(opts); (err != nil) != tt.wantErr {
				t.Fatalf("New with IngestWorkers=%d: err = %v, wantErr %v", tt.workers, err, tt.wantErr)
			}
		})
	}
}

func TestPublicTextStream(t *testing.T) {
	c, err := New(Options{Radius: 0.4, Tau: 0.8, InitPoints: 100})
	if err != nil {
		t.Fatal(err)
	}
	vocab := [][]string{{"google", "wearable", "sdk"}, {"apple", "iphone", "patent"}}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		k := i % 2
		doc := NewTokenSet(vocab[k]...)
		doc.Add(vocab[k][rng.Intn(3)])
		if err := c.Insert(NewTextPoint(doc, float64(i)/1000)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Snapshot().NumClusters(); got != 2 {
		t.Errorf("text stream clusters = %d, want 2", got)
	}
}

func TestPublicHelpers(t *testing.T) {
	p := NewPoint([]float64{1, 2}, 0.5)
	if p.Label != NoLabel || p.Time != 0.5 {
		t.Errorf("NewPoint = %+v", p)
	}
	lp := NewLabeledPoint([]float64{1}, 1, 3)
	if lp.Label != 3 {
		t.Errorf("NewLabeledPoint label = %d", lp.Label)
	}
	tp := NewTextPoint(NewTokenSet("a", "b"), 2)
	if !tp.IsText() || tp.Tokens.Len() != 2 {
		t.Errorf("NewTextPoint = %+v", tp)
	}
	d := DefaultDecay()
	if d.A != 0.998 || d.Lambda != 1 {
		t.Errorf("DefaultDecay = %+v", d)
	}
	var pts []Point
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		pts = append(pts, NewPoint([]float64{rng.Float64(), rng.Float64()}, 0))
	}
	r, err := SuggestRadius(pts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 || math.IsNaN(r) {
		t.Errorf("SuggestRadius = %v", r)
	}
	if _, err := SuggestRadius(pts[:1], 0.02); err == nil {
		t.Error("SuggestRadius with one point should error")
	}
}
