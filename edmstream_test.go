package edmstream

import (
	"math"
	"math/rand"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	c, err := New(Options{Radius: 0.8, Tau: 3, InitPoints: 200})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0, 0}, {10, 10}}
	for i := 0; i < 4000; i++ {
		k := i % 2
		p := NewLabeledPoint(
			[]float64{centers[k][0] + rng.NormFloat64()*0.5, centers[k][1] + rng.NormFloat64()*0.5},
			float64(i)/1000, k)
		if err := c.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if snap.NumClusters() != 2 {
		t.Fatalf("got %d clusters, want 2", snap.NumClusters())
	}
	if c.Now() < 3.9 {
		t.Errorf("Now = %v", c.Now())
	}
	if c.Tau() != 3 {
		t.Errorf("Tau = %v, want the static 3", c.Tau())
	}
	if len(c.DecisionGraph()) == 0 {
		t.Error("empty decision graph")
	}
	if c.Stats().Points != 4000 {
		t.Errorf("Stats.Points = %d", c.Stats().Points)
	}
	if c.ReservoirBound() <= 0 {
		t.Error("ReservoirBound should be positive")
	}
	if got := c.LastSnapshot().NumClusters(); got != snap.NumClusters() {
		t.Errorf("LastSnapshot clusters = %d, want %d", got, snap.NumClusters())
	}
	if len(c.Events()) == 0 {
		t.Error("no evolution events recorded")
	}
	if !(c.Alpha() >= 0 && c.Alpha() < 1) {
		t.Errorf("Alpha = %v", c.Alpha())
	}
}

func TestPublicOptionsValidation(t *testing.T) {
	if err := (Options{Radius: 1}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	if err := (Options{}).Validate(); err == nil {
		t.Error("missing radius should be rejected")
	}
	if _, err := New(Options{Radius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
	// Filter plumbing: DisableFilters produces a working clusterer.
	c, err := New(Options{Radius: 1, DisableFilters: true, Tau: 2, InitPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := c.Insert(NewPoint([]float64{float64(i % 5), 0}, float64(i)/1000)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().FilteredByDensity != 0 || c.Stats().FilteredByTriangle != 0 {
		t.Error("DisableFilters did not disable the filters")
	}
	// Explicit filter selection is honored.
	c2, err := New(Options{Radius: 1, Filters: FilterDensity, Tau: 2, InitPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := c2.Insert(NewPoint([]float64{float64(i % 5), 0}, float64(i)/1000)); err != nil {
			t.Fatal(err)
		}
	}
	if c2.Stats().FilteredByTriangle != 0 {
		t.Error("triangle filter fired although only the density filter was selected")
	}
	// Negative EvolutionInterval disables automatic tracking.
	if err := (Options{Radius: 1, EvolutionInterval: -1}).Validate(); err != nil {
		t.Errorf("negative EvolutionInterval should mean disabled, got error: %v", err)
	}
}

func TestPublicTextStream(t *testing.T) {
	c, err := New(Options{Radius: 0.4, Tau: 0.8, InitPoints: 100})
	if err != nil {
		t.Fatal(err)
	}
	vocab := [][]string{{"google", "wearable", "sdk"}, {"apple", "iphone", "patent"}}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		k := i % 2
		doc := NewTokenSet(vocab[k]...)
		doc.Add(vocab[k][rng.Intn(3)])
		if err := c.Insert(NewTextPoint(doc, float64(i)/1000)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Snapshot().NumClusters(); got != 2 {
		t.Errorf("text stream clusters = %d, want 2", got)
	}
}

func TestPublicHelpers(t *testing.T) {
	p := NewPoint([]float64{1, 2}, 0.5)
	if p.Label != NoLabel || p.Time != 0.5 {
		t.Errorf("NewPoint = %+v", p)
	}
	lp := NewLabeledPoint([]float64{1}, 1, 3)
	if lp.Label != 3 {
		t.Errorf("NewLabeledPoint label = %d", lp.Label)
	}
	tp := NewTextPoint(NewTokenSet("a", "b"), 2)
	if !tp.IsText() || tp.Tokens.Len() != 2 {
		t.Errorf("NewTextPoint = %+v", tp)
	}
	d := DefaultDecay()
	if d.A != 0.998 || d.Lambda != 1 {
		t.Errorf("DefaultDecay = %+v", d)
	}
	var pts []Point
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		pts = append(pts, NewPoint([]float64{rng.Float64(), rng.Float64()}, 0))
	}
	r, err := SuggestRadius(pts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 || math.IsNaN(r) {
		t.Errorf("SuggestRadius = %v", r)
	}
	if _, err := SuggestRadius(pts[:1], 0.02); err == nil {
		t.Error("SuggestRadius with one point should error")
	}
}
